(* Differential suite for the graph backends: the same random operation
   sequence is applied to the hash adjacency map (Graph_hash) and the
   compact CSR store (Graph_csr) through the shared Graph_intf.S
   contract, and after EVERY operation the canonical observables —
   sorted accessors, counts, degrees, invariants, mutation return
   values, self-loop rejection — must agree exactly. This is the pin
   that let the engine switch its default backend without touching any
   consumer: anything the rest of the repo can legally observe is
   checked here to be representation-independent. *)

module H = Xheal_graph.Graph_hash
module C = Xheal_graph.Graph_csr
module G = Xheal_graph.Graph
module Edge = Xheal_graph.Edge

(* ------------------------------------------------------------------ *)
(* Canonical observable state of a backend graph.                     *)

module Obs (B : Xheal_graph.Graph_intf.S) = struct
  type snap = {
    nodes : int list;
    edges : (int * int) list;
    num_nodes : int;
    num_edges : int;
    max_node : int option;
    min_degree : int;
    max_degree : int;
    degrees : (int * int * int list) list;  (* (node, degree, sorted neighbours) *)
    volume_all : int;
    invariants : (unit, string) result;
  }

  let snap ~ids g =
    let probe = List.init ids Fun.id in
    {
      nodes = B.nodes g;
      edges = List.map (fun e -> (Edge.src e, Edge.dst e)) (B.edges g);
      num_nodes = B.num_nodes g;
      num_edges = B.num_edges g;
      max_node = B.max_node g;
      min_degree = B.min_degree g;
      max_degree = B.max_degree g;
      (* Probe the whole id space, absent nodes included: absent lookups
         must report degree 0 / no neighbours on both backends. *)
      degrees = List.map (fun u -> (u, B.degree g u, B.neighbors g u)) probe;
      volume_all = B.volume g (B.nodes g);
      invariants = B.check_invariants g;
    }
end

module Oh = Obs (H)
module Oc = Obs (C)

(* The two snap types are distinct nominal records with identical
   shapes; compare field by field. *)
let snaps_agree (a : Oh.snap) (b : Oc.snap) =
  a.Oh.nodes = b.Oc.nodes && a.Oh.edges = b.Oc.edges
  && a.Oh.num_nodes = b.Oc.num_nodes
  && a.Oh.num_edges = b.Oc.num_edges
  && a.Oh.max_node = b.Oc.max_node
  && a.Oh.min_degree = b.Oc.min_degree
  && a.Oh.max_degree = b.Oc.max_degree
  && a.Oh.degrees = b.Oc.degrees
  && a.Oh.volume_all = b.Oc.volume_all
  && a.Oh.invariants = Ok () && b.Oc.invariants = Ok ()

(* ------------------------------------------------------------------ *)
(* Random operation sequences over a small id space (collisions,      *)
(* re-adds and removals of absent things all get exercised).          *)

type op =
  | Add_node of int
  | Remove_node of int
  | Add_edge of int * int
  | Remove_edge of int * int
  | Self_loop of int

let gen_ops ~rng ~ids ~steps =
  List.init steps (fun _ ->
      let id () = Random.State.int rng ids in
      match Random.State.int rng 12 with
      | 0 | 1 -> Add_node (id ())
      | 2 | 3 -> Remove_node (id ())
      | 4 | 5 -> Remove_edge (id (), id ())
      | 6 -> Self_loop (id ())
      | _ -> Add_edge (id (), id ()))

let rejects_self_loop add g u =
  match add g u u with
  | (_ : bool) -> false
  | exception Invalid_argument _ -> true

(* Applies one op to both graphs; false when their behaviour diverges
   (mutation results included — add/remove return values are part of
   the contract). *)
let step hg cg = function
  | Add_node u ->
    H.add_node hg u;
    C.add_node cg u;
    true
  | Remove_node u ->
    H.remove_node hg u;
    C.remove_node cg u;
    true
  | Add_edge (u, v) ->
    if u = v then true
    else
      let rh = H.add_edge hg u v in
      let rc = C.add_edge cg u v in
      rh = rc
  | Remove_edge (u, v) ->
    if u = v then true
    else
      let rh = H.remove_edge hg u v in
      let rc = C.remove_edge cg u v in
      rh = rc
  | Self_loop u -> rejects_self_loop H.add_edge hg u && rejects_self_loop C.add_edge cg u

let run_diff ~seed ~ids ~steps =
  let rng = Random.State.make [| seed; 0xd1ff |] in
  let ops = gen_ops ~rng ~ids ~steps in
  let hg = H.create () and cg = C.create ~capacity:4 () in
  List.for_all
    (fun op -> step hg cg op && snaps_agree (Oh.snap ~ids hg) (Oc.snap ~ids cg))
    ops

let prop_diff =
  QCheck.Test.make ~name:"hash and CSR backends are observably identical" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed -> run_diff ~seed ~ids:14 ~steps:120)

(* Derived constructors must agree too: of_edges, induced subgraph,
   union_into, copy, equal. *)
let prop_derived =
  QCheck.Test.make ~name:"derived constructors agree across backends" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xdead |] in
      let pairs =
        List.init 24 (fun _ -> (Random.State.int rng 12, Random.State.int rng 12))
      in
      let pairs = List.filter (fun (u, v) -> u <> v) pairs in
      let extra = [ Random.State.int rng 12; Random.State.int rng 12 ] in
      let hg = H.of_edges ~nodes:extra pairs and cg = C.of_edges ~nodes:extra pairs in
      let keep = List.filter (fun u -> u mod 3 <> 0) (H.nodes hg) in
      let hs = H.sub hg keep and cs = C.sub cg keep in
      let hu = H.copy hg and cu = C.copy cg in
      H.union_into ~dst:hu hs;
      C.union_into ~dst:cu cs;
      snaps_agree (Oh.snap ~ids:12 hg) (Oc.snap ~ids:12 cg)
      && snaps_agree (Oh.snap ~ids:12 hs) (Oc.snap ~ids:12 cs)
      && snaps_agree (Oh.snap ~ids:12 hu) (Oc.snap ~ids:12 cu)
      && H.equal hg hg && C.equal cg cg
      && H.equal hu hg && C.equal cu cg)

(* ------------------------------------------------------------------ *)
(* Façade-level cross-backend behaviour.                              *)

let facade_graph ~seed backend =
  let rng = Random.State.make [| seed; 0xface |] in
  let g = G.create ~backend () in
  for _ = 1 to 40 do
    let u = Random.State.int rng 10 and v = Random.State.int rng 10 in
    if u <> v then ignore (G.add_edge g u v)
  done;
  for _ = 1 to 6 do
    G.remove_node g (Random.State.int rng 10)
  done;
  g

let prop_with_backend =
  QCheck.Test.make ~name:"with_backend round-trips preserve equality" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h = facade_graph ~seed G.Hash in
      let c = G.with_backend G.Csr h in
      let h' = G.with_backend G.Hash c in
      G.backend c = G.Csr && G.backend h' = G.Hash
      && G.equal h c && G.equal c h' && G.nodes h = G.nodes c
      && G.edges h = G.edges c)

let prop_cross_union =
  QCheck.Test.make ~name:"union_into works across façade backends" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h = facade_graph ~seed G.Hash in
      let c = facade_graph ~seed:(seed + 1) G.Csr in
      (* Union each into a fresh graph of the OTHER backend; both unions
         must agree with each other. *)
      let into_c = G.create ~backend:G.Csr () in
      G.union_into ~dst:into_c h;
      G.union_into ~dst:into_c c;
      let into_h = G.create ~backend:G.Hash () in
      G.union_into ~dst:into_h c;
      G.union_into ~dst:into_h h;
      G.equal into_c into_h
      && G.check_invariants into_c = Ok ()
      && G.check_invariants into_h = Ok ())

let prop_pack =
  QCheck.Test.make ~name:"pack is identical across façade backends" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h = facade_graph ~seed G.Hash in
      let c = G.with_backend G.Csr h in
      let ph = G.pack h and pc = G.pack c in
      ph.G.p_ids = pc.G.p_ids && ph.G.row_ptr = pc.G.row_ptr && ph.G.cols = pc.G.cols
      && (Array.length ph.G.p_ids = 0
         || List.for_all
              (fun u ->
                let i = G.packed_index ph u in
                ph.G.p_ids.(i) = u
                && ph.G.row_ptr.(i + 1) - ph.G.row_ptr.(i) = G.degree h u)
              (G.nodes h)))

let suite =
  [
    ( "graph-diff",
      List.map
        (fun t -> QCheck_alcotest.to_alcotest t)
        [ prop_diff; prop_derived; prop_with_backend; prop_cross_union; prop_pack ] );
  ]
