(* The observability layer (lib/obs): deterministic JSON writer/parser,
   metrics registry semantics (histogram bucketing in particular),
   tracer span discipline (nesting, orphan ends), Chrome-trace export
   shape, registry-sourced Netsim per-type stats, and the headline
   invariant — same seed ⇒ byte-identical trace and metrics exports,
   pinned on a faulty asynchronous composite repair. *)

module Jsonw = Xheal_obs.Jsonw
module Metrics = Xheal_obs.Metrics
module Tracer = Xheal_obs.Tracer
module Scope = Xheal_obs.Scope
module Chrome_trace = Xheal_obs.Chrome_trace
module Graph = Xheal_graph.Graph
module Gen = Xheal_graph.Generators
module Xheal = Xheal_core.Xheal
module Netsim = Xheal_distributed.Netsim
module Election = Xheal_distributed.Election
module Fault_plan = Xheal_distributed.Fault_plan
module Schedule = Xheal_distributed.Schedule
module Replay = Xheal_distributed.Replay

(* ---------- Jsonw ---------- *)

let test_jsonw_roundtrip () =
  let v =
    Jsonw.Obj
      [
        ("s", Jsonw.String "a\"b\\c\n\t");
        ("i", Jsonw.Int (-42));
        ("f", Jsonw.Float 1.5);
        ("b", Jsonw.Bool true);
        ("n", Jsonw.Null);
        ("l", Jsonw.List [ Jsonw.Int 1; Jsonw.Obj []; Jsonw.List [] ]);
      ]
  in
  (match Jsonw.of_string (Jsonw.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  (match Jsonw.of_string (Jsonw.to_string_pretty v) with
  | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e);
  Alcotest.(check bool) "trailing garbage rejected" true
    (Result.is_error (Jsonw.of_string "{} x"));
  Alcotest.(check bool) "bad token rejected" true
    (Result.is_error (Jsonw.of_string "{\"a\":nope}"))

(* JSON has no non-finite literal: NaN and the infinities must print as
   null (and therefore reparse as Null), never as "nan"/"inf" tokens
   that would corrupt the file. Integral floats keep one fractional
   digit so they stay floats on reparse. *)
let test_jsonw_nonfinite () =
  let s =
    Jsonw.to_string
      (Jsonw.List
         [ Jsonw.Float Float.nan; Jsonw.Float Float.infinity;
           Jsonw.Float Float.neg_infinity; Jsonw.Float 2.0 ])
  in
  Alcotest.(check string) "non-finite floats print as null" "[null,null,null,2.0]" s;
  match Jsonw.of_string s with
  | Ok (Jsonw.List [ Jsonw.Null; Jsonw.Null; Jsonw.Null; Jsonw.Float _ ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected reparse shape"
  | Error e -> Alcotest.failf "reparse failed: %s" e

(* Every byte below 0x20 must leave the writer escaped (named escapes
   for \n \r \t, \u00XX otherwise) and survive a parse roundtrip. *)
let test_jsonw_control_chars () =
  let s = String.init 0x20 Char.chr ^ "end\"quote" in
  let printed = Jsonw.to_string (Jsonw.String s) in
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        Alcotest.failf "raw control byte 0x%02x in output" (Char.code c))
    printed;
  (match Jsonw.of_string printed with
  | Ok (Jsonw.String s') -> Alcotest.(check string) "control-char roundtrip" s s'
  | Ok _ -> Alcotest.fail "control-char string reparsed as non-string"
  | Error e -> Alcotest.failf "control-char reparse failed: %s" e);
  (* The reader accepts ASCII \u escapes and rejects multi-byte ones. *)
  (match Jsonw.of_string "\"\\u0041\"" with
  | Ok (Jsonw.String "A") -> ()
  | _ -> Alcotest.fail "\\u0041 did not parse as A");
  Alcotest.(check bool) "non-ASCII \\u escape rejected" true
    (Result.is_error (Jsonw.of_string "\"\\u2603\""))

(* ---------- Metrics: histogram bucketing ---------- *)

let test_histogram_bucketing () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" ~buckets:[| 10; 20 |] in
  List.iter (Metrics.observe h) [ 5; 10; 11; 20; 21; 100 ];
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check int) "sum" 167 (Metrics.histogram_sum h);
  Alcotest.(check (list (pair (option int) int)))
    "inclusive upper bounds + overflow"
    [ (Some 10, 2); (Some 20, 2); (None, 2) ]
    (Metrics.histogram_buckets h);
  (* Re-acquiring with identical bounds is the same histogram. *)
  Metrics.observe (Metrics.histogram reg "h" ~buckets:[| 10; 20 |]) 1;
  Alcotest.(check int) "shared on re-acquire" 7 (Metrics.histogram_count h);
  Alcotest.(check bool) "bounds mismatch rejected" true
    (try
       ignore (Metrics.histogram reg "h" ~buckets:[| 10; 30 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-increasing bounds rejected" true
    (try
       ignore (Metrics.histogram reg "h2" ~buckets:[| 5; 5 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Metrics.counter reg "h");
       false
     with Invalid_argument _ -> true)

(* Deterministic histogram summaries: count/sum/min/max/mean, all-zero
   on an empty histogram (no NaN mean), and [summaries] lists every
   histogram in the registry's sorted order. *)
let test_metrics_summary () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[| 10 |] in
  List.iter (Metrics.observe h) [ 4; 10; 1 ];
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 3 s.Metrics.s_count;
  Alcotest.(check int) "sum" 15 s.Metrics.s_sum;
  Alcotest.(check int) "min" 1 s.Metrics.s_min;
  Alcotest.(check int) "max" 10 s.Metrics.s_max;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Metrics.s_mean;
  let e = Metrics.summary (Metrics.histogram reg "empty" ~buckets:[| 1 |]) in
  Alcotest.(check int) "empty count" 0 e.Metrics.s_count;
  Alcotest.(check (float 0.)) "empty mean is 0, not NaN" 0.0 e.Metrics.s_mean;
  Alcotest.(check int) "empty min" 0 e.Metrics.s_min;
  ignore (Metrics.counter reg "not-a-histogram");
  Alcotest.(check (list string)) "summaries: histograms only, sorted"
    [ "empty"; "lat" ]
    (List.map fst (Metrics.summaries reg));
  match Metrics.summary_json s with
  | Jsonw.Obj fields ->
    Alcotest.(check (list string)) "summary_json field order"
      [ "count"; "sum"; "min"; "max"; "mean" ] (List.map fst fields)
  | _ -> Alcotest.fail "summary_json is not an object"

(* ---------- Tracer: nesting and orphan detection ---------- *)

let test_span_nesting () =
  let tr = Tracer.create () in
  Tracer.begin_span tr ~track:0 ~name:"outer" ~now:0;
  Tracer.begin_span tr ~track:0 ~name:"inner" ~now:2;
  Alcotest.(check int) "two open" 2 (Tracer.open_spans tr);
  Alcotest.(check bool) "check flags open spans" true
    (Result.is_error (Tracer.check tr));
  Tracer.end_span tr ~track:0 ~now:5;
  Tracer.end_span tr ~track:0 ~now:9;
  Alcotest.(check bool) "balanced" true (Result.is_ok (Tracer.check tr));
  (* Spans appear at completion: inner closes first. *)
  (match Tracer.events tr with
  | [ { Tracer.name = "inner"; ts = 2; data = Tracer.Span { dur = 3 }; _ };
      { Tracer.name = "outer"; ts = 0; data = Tracer.Span { dur = 9 }; _ } ] ->
    ()
  | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs));
  (* Same-track spans nest; an end on an empty track is an orphan. *)
  Alcotest.(check bool) "orphan end rejected" true
    (try
       Tracer.end_span tr ~track:7 ~now:1;
       false
     with Invalid_argument _ -> true);
  Tracer.begin_span tr ~track:1 ~name:"late" ~now:10;
  Alcotest.(check bool) "end before begin rejected" true
    (try
       Tracer.end_span tr ~track:1 ~now:4;
       false
     with Invalid_argument _ -> true)

let test_set_base () =
  let tr = Tracer.create () in
  Tracer.begin_span tr ~track:0 ~name:"p1" ~now:0;
  Tracer.end_span tr ~track:0 ~now:4;
  Tracer.set_base tr 4;
  Tracer.begin_span tr ~track:0 ~name:"p2" ~now:0;
  Tracer.end_span tr ~track:0 ~now:3;
  match Tracer.events tr with
  | [ { Tracer.ts = 0; _ }; { Tracer.ts = 4; data = Tracer.Span { dur = 3 }; _ } ] -> ()
  | _ -> Alcotest.fail "base offset not applied"

(* ---------- Tracer.aggregate: flamegraph-style totals ---------- *)

let agg_of name aggs =
  match List.find_opt (fun a -> a.Tracer.agg_name = name) aggs with
  | Some a -> (a.Tracer.count, a.Tracer.total, a.Tracer.self)
  | None -> Alcotest.failf "no aggregate row for %S" name

let test_aggregate_nesting () =
  let tr = Tracer.create () in
  (* outer [0,10] wraps inner [2,5] and inner [6,8]; a second outer
     [20,24] has no children. Self(outer) = 10-5 + 4 = 9. *)
  Tracer.begin_span tr ~track:0 ~name:"outer" ~now:0;
  Tracer.begin_span tr ~track:0 ~name:"inner" ~now:2;
  Tracer.end_span tr ~track:0 ~now:5;
  Tracer.begin_span tr ~track:0 ~name:"inner" ~now:6;
  Tracer.end_span tr ~track:0 ~now:8;
  Tracer.end_span tr ~track:0 ~now:10;
  Tracer.begin_span tr ~track:0 ~name:"outer" ~now:20;
  Tracer.end_span tr ~track:0 ~now:24;
  (* Instants and samples are ignored by the aggregation. *)
  Tracer.instant tr ~track:0 ~name:"noise" ~now:3;
  Tracer.sample tr ~track:0 ~name:"noise" ~now:4 ~value:9;
  let aggs = Tracer.aggregate tr in
  Alcotest.(check (list string)) "rows sorted by name, spans only" [ "inner"; "outer" ]
    (List.map (fun a -> a.Tracer.agg_name) aggs);
  Alcotest.(check (triple int int int)) "inner totals" (2, 5, 5) (agg_of "inner" aggs);
  Alcotest.(check (triple int int int)) "outer totals" (2, 14, 9) (agg_of "outer" aggs)

let test_aggregate_depth_and_tracks () =
  let tr = Tracer.create () in
  (* Track 0: a [0,10] > b [1,9] > c [2,4] — only DIRECT children count
     against self: self(a) = 10-8 = 2, self(b) = 8-2 = 6. *)
  Tracer.begin_span tr ~track:0 ~name:"a" ~now:0;
  Tracer.begin_span tr ~track:0 ~name:"b" ~now:1;
  Tracer.begin_span tr ~track:0 ~name:"c" ~now:2;
  Tracer.end_span tr ~track:0 ~now:4;
  Tracer.end_span tr ~track:0 ~now:9;
  Tracer.end_span tr ~track:0 ~now:10;
  (* Track 1: an overlapping-in-time "a" [3,7] must NOT nest under
     track 0's spans — tracks aggregate independently. *)
  Tracer.begin_span tr ~track:1 ~name:"a" ~now:3;
  Tracer.end_span tr ~track:1 ~now:7;
  let aggs = Tracer.aggregate tr in
  Alcotest.(check (triple int int int)) "a across tracks" (2, 14, 6) (agg_of "a" aggs);
  Alcotest.(check (triple int int int)) "b direct child only" (1, 8, 6) (agg_of "b" aggs);
  Alcotest.(check (triple int int int)) "c leaf" (1, 2, 2) (agg_of "c" aggs)

let test_aggregate_phases_and_zero () =
  let tr = Tracer.create () in
  (* Two phases laid out with set_base, each wrapping the same protocol
     span name; recording order alone (completion order) would nest
     phase2 under phase1 without the interval reconstruction. *)
  Tracer.begin_span tr ~track:0 ~name:"phase1" ~now:0;
  Tracer.begin_span tr ~track:0 ~name:"proto" ~now:1;
  Tracer.end_span tr ~track:0 ~now:4;
  Tracer.end_span tr ~track:0 ~now:5;
  Tracer.set_base tr 5;
  Tracer.begin_span tr ~track:0 ~name:"phase2" ~now:0;
  Tracer.begin_span tr ~track:0 ~name:"proto" ~now:0;
  Tracer.end_span tr ~track:0 ~now:2;
  (* A zero-duration span still counts an occurrence. *)
  Tracer.begin_span tr ~track:0 ~name:"blip" ~now:3;
  Tracer.end_span tr ~track:0 ~now:3;
  Tracer.end_span tr ~track:0 ~now:3;
  let aggs = Tracer.aggregate tr in
  Alcotest.(check (triple int int int)) "phase1" (1, 5, 2) (agg_of "phase1" aggs);
  Alcotest.(check (triple int int int)) "phase2" (1, 3, 1) (agg_of "phase2" aggs);
  Alcotest.(check (triple int int int)) "proto summed across phases" (2, 5, 5)
    (agg_of "proto" aggs);
  Alcotest.(check (triple int int int)) "zero-duration span" (1, 0, 0)
    (agg_of "blip" aggs);
  (* Self times partition the traced time exactly: sum(self) =
     sum of top-level durations (5 + 3). *)
  let total_self = List.fold_left (fun acc a -> acc + a.Tracer.self) 0 aggs in
  Alcotest.(check int) "self times partition the timeline" 8 total_self

(* ---------- Chrome-trace export shape ---------- *)

let test_chrome_export () =
  let tr = Tracer.create () in
  Tracer.name_track tr ~track:Tracer.control_track "phases";
  Tracer.name_track tr ~track:0 "node 0";
  Tracer.begin_span tr ~track:Tracer.control_track ~name:"repair" ~now:0;
  Tracer.instant tr ~track:0 ~name:"recv:hello" ~now:1;
  Tracer.sample tr ~track:Tracer.control_track ~name:"inflight" ~now:1 ~value:3;
  Tracer.end_span tr ~track:Tracer.control_track ~now:2;
  let json = Chrome_trace.to_json tr in
  let events =
    match Jsonw.member "traceEvents" json with
    | Some (Jsonw.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let phs =
    List.filter_map
      (fun e -> match Jsonw.member "ph" e with Some (Jsonw.String p) -> Some p | _ -> None)
      events
  in
  Alcotest.(check (list string)) "event kinds in order" [ "M"; "M"; "i"; "C"; "X" ] phs;
  (* The control track must not export a negative tid. *)
  List.iter
    (fun e ->
      match Jsonw.member "tid" e with
      | Some (Jsonw.Int t) -> Alcotest.(check bool) "tid >= 0" true (t >= 0)
      | _ -> Alcotest.fail "event without tid")
    events;
  match Jsonw.of_string (Chrome_trace.to_string tr) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export is not valid JSON: %s" e

(* An empty tracer — and one holding only track-name metadata, the
   "named but never used" shape a monitor-less run leaves behind — must
   still export valid Chrome JSON. *)
let test_chrome_export_empty () =
  let tr = Tracer.create () in
  (match Jsonw.of_string (Chrome_trace.to_string tr) with
  | Ok json -> (
    match Jsonw.member "traceEvents" json with
    | Some (Jsonw.List []) -> ()
    | Some (Jsonw.List _) -> Alcotest.fail "empty tracer exported events"
    | _ -> Alcotest.fail "no traceEvents array")
  | Error e -> Alcotest.failf "empty export is not valid JSON: %s" e);
  Tracer.name_track tr ~track:3 "idle track";
  match Jsonw.of_string (Chrome_trace.to_string tr) with
  | Ok json -> (
    match Jsonw.member "traceEvents" json with
    | Some (Jsonw.List events) ->
      List.iter
        (fun e ->
          match Jsonw.member "ph" e with
          | Some (Jsonw.String "M") -> ()
          | _ -> Alcotest.fail "event-free track exported a non-metadata event")
        events
    | _ -> Alcotest.fail "no traceEvents array")
  | Error e -> Alcotest.failf "metadata-only export is not valid JSON: %s" e

(* ---------- Netsim stats come from the registry ---------- *)

let test_per_type_consistency () =
  let obs = Scope.create () in
  let plan = Fault_plan.make ~seed:9 ~drop:0.15 ~duplicate:0.1 () in
  let stats, leader =
    Election.run_robust ~rng:(Random.State.make [| 21 |]) ~obs ~plan ~max_rounds:600
      (List.init 24 Fun.id)
  in
  Alcotest.(check bool) "elected someone" true (leader <> None);
  Alcotest.(check bool) "has per-type rows" true (stats.Netsim.per_type <> []);
  let sum f = List.fold_left (fun acc (_, c) -> acc + f c) 0 stats.Netsim.per_type in
  Alcotest.(check int) "per-type drops sum to stats.dropped" stats.Netsim.dropped
    (sum (fun c -> c.Netsim.dropped));
  Alcotest.(check int) "per-type dups sum to stats.duplicated" stats.Netsim.duplicated
    (sum (fun c -> c.Netsim.duplicated));
  (* The same counters are visible in the scope's registry dump. *)
  let counters = Metrics.counters obs.Scope.metrics in
  List.iter
    (fun (kind, c) ->
      Alcotest.(check (option int))
        (Printf.sprintf "registry matches per_type for %s" kind)
        (Some c.Netsim.delivered)
        (List.assoc_opt ("netsim.delivered." ^ kind) counters))
    stats.Netsim.per_type

(* ---------- Byte-identical exports on replay ---------- *)

(* One faulty asynchronous composite repair: a seeded engine run feeds
   its recorded ops to the protocol replay under drops/dups/delays on
   an async schedule, all observed in one scope. *)
let observed_repair seed =
  let obs = Scope.create () in
  let rng = Random.State.make [| seed |] in
  let eng = Xheal.create ~rng (Gen.random_regular ~rng 24 4) in
  let atk = Random.State.make [| seed + 1 |] in
  let prng = Random.State.make [| seed + 2 |] in
  let plan = Fault_plan.make ~seed:(seed + 3) ~drop:0.08 ~duplicate:0.05 ~delay:0.1 () in
  let schedule = Schedule.async ~seed:(seed + 4) ~fairness:6 in
  for _ = 1 to 4 do
    let nodes = Graph.nodes (Xheal.graph eng) in
    let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
    Xheal.delete eng v;
    ignore
      (Replay.deletion ~rng:prng ~obs ~plan ~schedule ~max_rounds:20_000 ~d:2
         (Xheal.last_ops eng))
  done;
  Alcotest.(check bool) "trace is well-formed" true
    (Result.is_ok (Tracer.check obs.Scope.tracer));
  (Scope.trace_string obs, Scope.metrics_string obs)

let test_trace_determinism () =
  List.iter
    (fun seed ->
      let trace1, metrics1 = observed_repair seed in
      let trace2, metrics2 = observed_repair seed in
      Alcotest.(check bool)
        (Printf.sprintf "trace bytes identical (seed %d)" seed)
        true (String.equal trace1 trace2);
      Alcotest.(check bool)
        (Printf.sprintf "metrics bytes identical (seed %d)" seed)
        true (String.equal metrics1 metrics2);
      Alcotest.(check bool) "trace non-trivial" true (String.length trace1 > 1000))
    [ 3; 17 ]

(* The instrumented engine is deterministic too, and observation leaves
   the repair outcome untouched (obs never draws from the rng). *)
let observed_engine seed =
  let obs = Scope.create () in
  let rng = Random.State.make [| seed |] in
  let eng = Xheal.create ~obs ~rng (Gen.random_regular ~rng 32 4) in
  let atk = Random.State.make [| seed + 1 |] in
  for _ = 1 to 8 do
    let nodes = Graph.nodes (Xheal.graph eng) in
    let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
    Xheal.delete eng v
  done;
  Alcotest.(check bool) "engine trace well-formed" true
    (Result.is_ok (Tracer.check obs.Scope.tracer));
  ((Xheal.totals eng).Xheal_core.Cost.total_messages,
   (Scope.trace_string obs, Scope.metrics_string obs))

let test_engine_determinism () =
  let msgs1, (trace1, metrics1) = observed_engine 11 in
  let msgs2, (trace2, metrics2) = observed_engine 11 in
  Alcotest.(check int) "same repairs" msgs1 msgs2;
  Alcotest.(check bool) "engine trace bytes identical" true (String.equal trace1 trace2);
  Alcotest.(check bool) "engine metrics bytes identical" true
    (String.equal metrics1 metrics2);
  (* Observation is passive: a bare engine on the same seed produces the
     same totals. *)
  let rng = Random.State.make [| 11 |] in
  let bare = Xheal.create ~rng (Gen.random_regular ~rng 32 4) in
  let atk = Random.State.make [| 12 |] in
  for _ = 1 to 8 do
    let nodes = Graph.nodes (Xheal.graph bare) in
    let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
    Xheal.delete bare v
  done;
  Alcotest.(check int) "observation does not perturb the engine" msgs1
    (Xheal.totals bare).Xheal_core.Cost.total_messages

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "jsonw roundtrip" `Quick test_jsonw_roundtrip;
        Alcotest.test_case "jsonw non-finite floats" `Quick test_jsonw_nonfinite;
        Alcotest.test_case "jsonw control-char escaping" `Quick test_jsonw_control_chars;
        Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
        Alcotest.test_case "histogram summaries" `Quick test_metrics_summary;
        Alcotest.test_case "span nesting and orphans" `Quick test_span_nesting;
        Alcotest.test_case "set_base offsets phases" `Quick test_set_base;
        Alcotest.test_case "aggregate: nesting and self times" `Quick
          test_aggregate_nesting;
        Alcotest.test_case "aggregate: depth, tracks are independent" `Quick
          test_aggregate_depth_and_tracks;
        Alcotest.test_case "aggregate: set_base phases and zero-duration" `Quick
          test_aggregate_phases_and_zero;
        Alcotest.test_case "chrome trace export shape" `Quick test_chrome_export;
        Alcotest.test_case "chrome trace export: empty and idle tracks" `Quick
          test_chrome_export_empty;
        Alcotest.test_case "per-type stats source from registry" `Quick
          test_per_type_consistency;
        Alcotest.test_case "faulty async repair exports byte-identically" `Quick
          test_trace_determinism;
        Alcotest.test_case "observed engine is deterministic and passive" `Quick
          test_engine_determinism;
      ] );
  ]
