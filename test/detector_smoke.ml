(* Fast failure-detector smoke, behind the @detector-smoke alias (a
   dependency of the default runtest): one crash detection on a NoN
   clique stays under the latency bound on sync and async schedules, a
   crash-free lossy run refutes its false suspicions without ever
   confirming, and the whole thing replays byte-identically per seed.
   The full sweep lives in E17 and test_detector.ml. *)

module Netsim = Xheal_distributed.Netsim
module Fault_plan = Xheal_distributed.Fault_plan
module Schedule = Xheal_distributed.Schedule
module Failure_detector = Xheal_distributed.Failure_detector
module Detect = Xheal_fault.Detect

(* The NoN clique over {victim} ∪ N(victim): everyone watches everyone
   else, as the engine's detector trigger wires it. *)
let clique ids = List.map (fun u -> (u, List.filter (fun v -> v <> u) ids)) ids

let cfg = Detect.make ~seed:3 ()

let detect ~plan ~schedule ~crash_at () =
  Failure_detector.run ~plan ~schedule ~config:cfg ~victim:0 ?crash_at
    ~peers:(clique [ 0; 1; 2; 3; 4 ])
    ()

let check name cond = if not cond then failwith ("detector-smoke: " ^ name)

let () =
  (* Crash detection, synchronous and fault-free: every surviving
     monitor confirms, within the latency bound. *)
  let stats, o = detect ~plan:Fault_plan.none ~schedule:Schedule.sync ~crash_at:(Some 9) () in
  check "sync run quiesced" stats.Netsim.converged;
  check "sync crash detected" o.Detect.detected;
  check "sync all four monitors confirmed" (o.Detect.confirmations = 4);
  check "sync latency positive" (o.Detect.latency > 0);
  check "sync latency under bound"
    (o.Detect.latency <= Detect.latency_bound cfg ~fairness:1);

  (* Same crash under loss and asynchrony: still detected, still under
     the (fairness-widened) bound. *)
  let plan = Fault_plan.make ~seed:11 ~drop:0.1 ~delay:0.2 ~max_delay:2 () in
  let schedule = Schedule.async ~seed:5 ~fairness:3 in
  let stats, o = detect ~plan ~schedule ~crash_at:(Some 9) () in
  check "async run quiesced" stats.Netsim.converged;
  check "async crash detected" o.Detect.detected;
  check "async latency under bound"
    (o.Detect.latency <= Detect.latency_bound cfg ~fairness:3);

  (* No crash, lossy network: suspicions may fire but every one is
     refuted before the confirm window closes — no confirmation, no
     phantom repair trigger. *)
  let stats, o = detect ~plan ~schedule ~crash_at:None () in
  check "false-suspicion run quiesced" stats.Netsim.converged;
  check "no phantom detection" (not o.Detect.detected);
  check "refutations cover suspicions" (o.Detect.refutations >= o.Detect.suspicions);

  (* Same-seed replay is byte-identical in every observable. *)
  let s1, o1 = detect ~plan ~schedule ~crash_at:(Some 9) () in
  let s2, o2 = detect ~plan ~schedule ~crash_at:(Some 9) () in
  check "same-seed replay identical" (s1 = s2 && o1 = o2);
  print_endline "detector-smoke: OK"
