(* Validates BENCH_<name>.json files against the xheal-bench/1 schema:
   parseable JSON carrying a wall-clock timing, a mode, and — when a
   phases array is present — well-formed per-phase message counts with
   at least one message recorded. Used by the @bench-smoke alias; exits
   non-zero with a diagnostic on the first violation.

   With [--baseline FILE] as the first argument, each validated bench
   file is additionally compared against the checked-in baseline
   (schema "xheal-bench-baseline/1"): entries are matched by name+mode,
   counts are pinned exactly via a structural-subset [expect] fragment,
   and wall-clock is only banded through an optional [wall_ms_max]
   ceiling — floats inside [expect] are rejected outright so nobody
   accidentally pins a timing bit-for-bit. *)

module J = Xheal_obs.Jsonw

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let get name json = match J.member name json with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_string name json =
  match get name json with J.String s -> s | _ -> fail "field %S is not a string" name

let get_int name json =
  match get name json with J.Int i -> i | _ -> fail "field %S is not an integer" name

let get_number name json =
  match get name json with
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> fail "field %S is not a number" name

let check_overhead = function
  | J.Obj _ as row ->
    let defense = get_string "defense" row in
    if String.length defense = 0 then fail "empty defense name";
    let messages = get_int "messages" row in
    let words = get_int "words" row in
    let confirms = get_int "confirms" row in
    let votes = get_int "votes" row in
    if messages <= 0 || words <= 0 then fail "defense %S carries no traffic" defense;
    if confirms < 0 || votes < 0 then fail "defense %S has negative counts" defense
  | _ -> fail "byzantine_overhead element is not an object"

(* E15 re-pricing rows. The zero-repair case is the historical footgun:
   a sweep cell that repaired nothing must report amortized = 0 (the
   guarded division), never NaN/inf (which would not even have parsed)
   and never a stale non-zero average. Consistency between [amortized]
   and [messages / repairs] is checked with the same guard rather than
   dividing blindly. *)
let check_e15 = function
  | J.Obj _ as row ->
    let policy = get_string "policy" row in
    if String.length policy = 0 then fail "empty e15 policy name";
    let loss = get_number "loss" row in
    let byz = get_number "byz" row in
    if not (loss >= 0. && loss <= 1.) then fail "e15 loss %f outside [0,1]" loss;
    if not (byz >= 0. && byz <= 1.) then fail "e15 byz %f outside [0,1]" byz;
    if get_int "fairness" row < 1 then fail "e15 fairness below 1";
    let repairs = get_int "repairs" row in
    let messages = get_int "messages" row in
    let rounds = get_int "rounds" row in
    let amortized = get_number "amortized" row in
    let overhead = get_number "overhead" row in
    if repairs < 0 || messages < 0 || rounds < 0 then
      fail "e15 cell (%s) has negative counts" policy;
    if get_int "escalations" row < 0 then fail "e15 cell (%s) negative escalations" policy;
    let unconverged = get_int "unconverged" row in
    if unconverged < 0 || unconverged > repairs then
      fail "e15 cell (%s) unconverged outside [0, repairs]" policy;
    if not (Float.is_finite amortized && Float.is_finite overhead) then
      fail "e15 cell (%s) non-finite average" policy;
    if repairs = 0 then begin
      if messages <> 0 then fail "e15 cell (%s) charges messages without repairs" policy;
      if amortized <> 0. || overhead <> 0. then
        fail "e15 cell (%s) has a non-zero average over zero repairs" policy
    end
    else begin
      let expect = float_of_int messages /. float_of_int repairs in
      if Float.abs (amortized -. expect) > 1e-6 *. Float.max 1. expect then
        fail "e15 cell (%s) amortized %f inconsistent with %d/%d" policy amortized
          messages repairs
    end
  | _ -> fail "e15_repricing element is not an object"

(* E17 detector rows. Crash cells must have confirmed every trial and
   report a positive latency no later than the run could possibly
   observe one; quiet cells must keep phantom confirmations to at most
   10% of trials. The mean/max pair is cross-checked for coherence
   instead of re-deriving the mean (per-trial latencies are not in the
   row). *)
let check_e17 = function
  | J.Obj _ as row ->
    let mode = get_string "mode" row in
    if mode <> "crash" && mode <> "quiet" then fail "unknown e17 mode %S" mode;
    let loss = get_number "loss" row in
    if not (loss >= 0. && loss <= 1.) then fail "e17 loss %f outside [0,1]" loss;
    if get_int "fairness" row < 1 then fail "e17 fairness below 1";
    let trials = get_int "trials" row in
    let detected = get_int "detected" row in
    if trials <= 0 then fail "e17 cell ran no trials";
    if detected < 0 || detected > trials then
      fail "e17 cell detected %d outside [0, %d]" detected trials;
    let mean_lat = get_number "mean_latency" row in
    let max_lat = get_int "max_latency" row in
    let bound = get_int "bound" row in
    if bound <= 0 then fail "e17 cell has a non-positive bound";
    if not (Float.is_finite mean_lat) then fail "e17 cell non-finite mean latency";
    if detected = 0 && (mean_lat <> 0. || max_lat <> 0) then
      fail "e17 cell reports latency without a detection";
    if detected > 0 && (mean_lat <= 0. || mean_lat > float_of_int max_lat) then
      fail "e17 cell mean latency %f incoherent with max %d" mean_lat max_lat;
    if mode = "crash" then begin
      if detected <> trials then
        fail "e17 crash cell missed %d of %d crashes" (trials - detected) trials
    end
    else if detected * 10 > trials then
      fail "e17 quiet cell confirmed %d phantom deaths in %d trials" detected trials;
    if get_int "suspicions" row < 0 || get_int "refutations" row < 0 then
      fail "e17 cell has negative counters";
    if get_int "messages" row <= 0 then fail "e17 cell carried no messages"
  | _ -> fail "e17_detector element is not an object"

(* Scaling-tier rows. Each cell must carry its schema tag, a nonzero
   amount of actual repair work, and a wall time inside its declared
   budget — the budget is the scaling tier's regression tripwire.
   Returns the cell's [n] so the caller can check rows stay strictly
   monotone (a shuffled or duplicated sweep is a harness bug). *)
let check_scaling prev_n = function
  | J.Obj _ as row ->
    (match get_string "tier" row with
    | "scaling/1" -> ()
    | tier -> fail "unknown scaling tier %S" tier);
    let n = get_int "n" row in
    if n <= prev_n then fail "scaling rows not strictly increasing in n (%d after %d)" n prev_n;
    let deletions = get_int "deletions" row in
    let repairs = get_int "repairs" row in
    if deletions <= 0 then fail "scaling cell n=%d ran no deletions" n;
    if repairs <= 0 then fail "scaling cell n=%d repaired nothing" n;
    if repairs > deletions then
      fail "scaling cell n=%d reports %d repairs for %d deletions" n repairs deletions;
    let wall = get_number "wall_ms" row in
    let budget = get_number "budget_ms" row in
    if not (wall >= 0.) then fail "scaling cell n=%d wall_ms %f invalid" n wall;
    if not (budget > 0.) then fail "scaling cell n=%d budget_ms %f invalid" n budget;
    if wall > budget then
      fail "scaling cell n=%d blew its budget (%.1f ms > %.1f ms)" n wall budget;
    if get_int "messages" row <= 0 then fail "scaling cell n=%d carried no messages" n;
    if get_int "rounds" row < 0 then fail "scaling cell n=%d negative rounds" n;
    if get_int "edges_added" row < 0 || get_int "edges_removed" row < 0 then
      fail "scaling cell n=%d negative edge churn" n;
    (match get "spans" row with
    | J.List spans ->
      if spans = [] then fail "scaling cell n=%d has no aggregated spans" n;
      List.iter
        (fun s ->
          let name = get_string "name" s in
          if String.length name = 0 then fail "scaling cell n=%d has an unnamed span" n;
          let count = get_int "count" s in
          let total = get_int "total" s in
          let self = get_int "self" s in
          if count <= 0 then fail "scaling span %S has no occurrences" name;
          if total < 0 || self < 0 || self > total then
            fail "scaling span %S has inconsistent totals (self %d, total %d)" name self
              total)
        spans
    | _ -> fail "scaling cell n=%d field \"spans\" is not an array" n);
    n
  | _ -> fail "scaling element is not an object"

let check_phase = function
  | J.Obj _ as row ->
    let phase = get_string "phase" row in
    if String.length phase = 0 then fail "empty phase name";
    let messages = get_int "messages" row in
    let rounds = get_int "rounds" row in
    if messages < 0 || rounds < 0 then fail "phase %S has negative counts" phase;
    messages
  | _ -> fail "phases element is not an object"

(* E16 monitor-overhead row: the bare/monitored engine pair ran the
   same seeded attack, so identical message totals are the bench-level
   passivity proof; a monitored run that did no checks (or fired a
   violation on this standard sweep) is a harness regression. *)
let check_e16 = function
  | J.Obj _ as row ->
    if get_int "n" row <= 0 || get_int "deletions" row <= 0 then
      fail "e16 cell ran no work";
    let off = get_int "messages_off" row in
    let on_ = get_int "messages_on" row in
    if off <= 0 then fail "e16 bare run carried no messages";
    if on_ <> off then
      fail "e16 monitor not passive: %d messages with monitors on vs %d off" on_ off;
    let checks = get_int "checks" row in
    if checks <= 0 then fail "e16 monitored run performed no checks";
    if get_int "events" row < checks then
      fail "e16 fewer events than checks (%d < %d)" (get_int "events" row) checks;
    let violations = get_int "violations" row in
    if violations <> 0 then
      fail "e16 standard sweep fired %d violation(s)" violations;
    if not (get_number "wall_off_ms" row >= 0. && get_number "wall_on_ms" row >= 0.)
    then fail "e16 invalid wall timings"
  | _ -> fail "e16_monitor is not an object"

let check_file path =
  let json =
    match J.of_string (read_file path) with
    | Ok j -> j
    | Error e -> fail "unparseable JSON: %s" e
  in
  let schema = get_string "schema" json in
  if not (String.equal schema "xheal-bench/1") then fail "unknown schema %S" schema;
  let name = get_string "name" json in
  if String.length name = 0 then fail "empty bench name";
  (match get_string "mode" json with
  | "quick" | "full" -> ()
  | m -> fail "unknown mode %S" m);
  let wall = get_number "wall_ms" json in
  if not (wall >= 0.) then fail "wall_ms = %f is not a valid timing" wall;
  (match J.member "phases" json with
  | Some (J.List rows) ->
    if rows = [] then fail "phases array is empty";
    let total = List.fold_left (fun acc row -> acc + check_phase row) 0 rows in
    if total <= 0 then fail "phases carry no messages"
  | Some _ -> fail "field \"phases\" is not an array"
  | None -> ());
  (match J.member "scaling" json with
  | Some (J.List rows) ->
    if rows = [] then fail "scaling array is empty";
    ignore (List.fold_left check_scaling min_int rows)
  | Some _ -> fail "field \"scaling\" is not an array"
  | None -> ());
  (match J.member "byzantine_overhead" json with
  | Some (J.List rows) ->
    if rows = [] then fail "byzantine_overhead array is empty";
    List.iter check_overhead rows
  | Some _ -> fail "field \"byzantine_overhead\" is not an array"
  | None -> ());
  (match J.member "e15_repricing" json with
  | Some (J.List rows) ->
    if rows = [] then fail "e15_repricing array is empty";
    List.iter check_e15 rows
  | Some _ -> fail "field \"e15_repricing\" is not an array"
  | None -> ());
  (match J.member "e16_monitor" json with
  | Some row -> check_e16 row
  | None -> ());
  (match J.member "e17_detector" json with
  | Some (J.List rows) ->
    if rows = [] then fail "e17_detector array is empty";
    List.iter check_e17 rows
  | Some _ -> fail "field \"e17_detector\" is not an array"
  | None -> ());
  Printf.printf "%s: ok (%s, wall %.1f ms)\n" path name wall;
  json

(* ------------------------------------------------------------------ *)
(* Baseline comparison. [expect] is a structural subset of the bench
   file: every leaf in the fragment must equal the corresponding leaf
   in the fresh output (ints/bools/strings/null exact; lists matched
   elementwise at equal length; objects may omit fields). Timings are
   never matched structurally — only the banded [wall_ms_max]. *)

let rec match_fragment path frag actual =
  match (frag, actual) with
  | J.Int a, J.Int b ->
    if a <> b then fail "baseline mismatch at %s: expected %d, measured %d" path a b
  | J.Bool a, J.Bool b ->
    if a <> b then fail "baseline mismatch at %s: expected %b, measured %b" path a b
  | J.String a, J.String b ->
    if not (String.equal a b) then
      fail "baseline mismatch at %s: expected %S, measured %S" path a b
  | J.Null, J.Null -> ()
  | J.Float _, _ ->
    fail "baseline fragment at %s pins a float; pin counts exactly and band timings via wall_ms_max" path
  | J.List fs, J.List bs ->
    if List.length fs <> List.length bs then
      fail "baseline mismatch at %s: expected %d elements, measured %d" path
        (List.length fs) (List.length bs);
    List.iteri (fun i f -> match_fragment (Printf.sprintf "%s[%d]" path i) f (List.nth bs i)) fs
  | J.Obj fs, J.Obj _ ->
    List.iter
      (fun (k, f) ->
        match J.member k actual with
        | Some a -> match_fragment (path ^ "." ^ k) f a
        | None -> fail "baseline mismatch at %s.%s: field absent from bench output" path k)
      fs
  | _ -> fail "baseline mismatch at %s: value kinds differ" path

let load_baseline path =
  let json =
    match J.of_string (read_file path) with
    | Ok j -> j
    | Error e -> fail "baseline %s: unparseable JSON: %s" path e
  in
  let schema = get_string "schema" json in
  if not (String.equal schema "xheal-bench-baseline/1") then
    fail "baseline %s: unknown schema %S" path schema;
  match get "entries" json with
  | J.List entries ->
    List.map (fun e -> (get_string "name" e, get_string "mode" e, e)) entries
  | _ -> fail "baseline %s: \"entries\" is not an array" path

let check_baseline entries path json =
  let name = get_string "name" json in
  let mode = get_string "mode" json in
  match
    List.find_opt (fun (n, m, _) -> String.equal n name && String.equal m mode) entries
  with
  | None -> fail "%s: no baseline entry for %s/%s" path name mode
  | Some (_, _, entry) ->
    (match J.member "expect" entry with
    | Some frag -> match_fragment name frag json
    | None -> ());
    (match J.member "wall_ms_max" entry with
    | Some ceiling_j ->
      let ceiling =
        match ceiling_j with
        | J.Int i -> float_of_int i
        | J.Float f -> f
        | _ -> fail "baseline entry %s/%s: wall_ms_max is not a number" name mode
      in
      let wall = get_number "wall_ms" json in
      if wall > ceiling then
        fail "%s: wall-clock regression: %.1f ms exceeds baseline ceiling %.1f ms" path
          wall ceiling
    | None -> ());
    Printf.printf "%s: baseline ok (%s/%s)\n" path name mode

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let baseline, files =
    match args with
    | "--baseline" :: bl :: rest -> (Some bl, rest)
    | _ -> (None, args)
  in
  if files = [] then begin
    prerr_endline "usage: bench_check [--baseline BASELINE.json] FILE.json...";
    exit 2
  end;
  try
    let entries = Option.map load_baseline baseline in
    List.iter
      (fun f ->
        let json = check_file f in
        match entries with None -> () | Some es -> check_baseline es f json)
      files
  with Bad msg ->
    Printf.eprintf "bench_check: %s\n" msg;
    exit 1
