(* Validates BENCH_<name>.json files against the xheal-bench/1 schema:
   parseable JSON carrying a wall-clock timing, a mode, and — when a
   phases array is present — well-formed per-phase message counts with
   at least one message recorded. Used by the @bench-smoke alias; exits
   non-zero with a diagnostic on the first violation. *)

module J = Xheal_obs.Jsonw

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let get name json = match J.member name json with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_string name json =
  match get name json with J.String s -> s | _ -> fail "field %S is not a string" name

let get_int name json =
  match get name json with J.Int i -> i | _ -> fail "field %S is not an integer" name

let get_number name json =
  match get name json with
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> fail "field %S is not a number" name

let check_overhead = function
  | J.Obj _ as row ->
    let defense = get_string "defense" row in
    if String.length defense = 0 then fail "empty defense name";
    let messages = get_int "messages" row in
    let words = get_int "words" row in
    let confirms = get_int "confirms" row in
    let votes = get_int "votes" row in
    if messages <= 0 || words <= 0 then fail "defense %S carries no traffic" defense;
    if confirms < 0 || votes < 0 then fail "defense %S has negative counts" defense
  | _ -> fail "byzantine_overhead element is not an object"

let check_phase = function
  | J.Obj _ as row ->
    let phase = get_string "phase" row in
    if String.length phase = 0 then fail "empty phase name";
    let messages = get_int "messages" row in
    let rounds = get_int "rounds" row in
    if messages < 0 || rounds < 0 then fail "phase %S has negative counts" phase;
    messages
  | _ -> fail "phases element is not an object"

let check_file path =
  let json =
    match J.of_string (read_file path) with
    | Ok j -> j
    | Error e -> fail "unparseable JSON: %s" e
  in
  let schema = get_string "schema" json in
  if not (String.equal schema "xheal-bench/1") then fail "unknown schema %S" schema;
  let name = get_string "name" json in
  if String.length name = 0 then fail "empty bench name";
  (match get_string "mode" json with
  | "quick" | "full" -> ()
  | m -> fail "unknown mode %S" m);
  let wall = get_number "wall_ms" json in
  if not (wall >= 0.) then fail "wall_ms = %f is not a valid timing" wall;
  (match J.member "phases" json with
  | Some (J.List rows) ->
    if rows = [] then fail "phases array is empty";
    let total = List.fold_left (fun acc row -> acc + check_phase row) 0 rows in
    if total <= 0 then fail "phases carry no messages"
  | Some _ -> fail "field \"phases\" is not an array"
  | None -> ());
  (match J.member "byzantine_overhead" json with
  | Some (J.List rows) ->
    if rows = [] then fail "byzantine_overhead array is empty";
    List.iter check_overhead rows
  | Some _ -> fail "field \"byzantine_overhead\" is not an array"
  | None -> ());
  Printf.printf "%s: ok (%s, wall %.1f ms)\n" path name wall

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: bench_check FILE.json...";
    exit 2
  end;
  try List.iter check_file files
  with Bad msg ->
    Printf.eprintf "bench_check: %s\n" msg;
    exit 1
