(* The benchmark/reproduction harness.

   Part 1 regenerates every experiment of DESIGN.md §4 (the paper's
   theorem guarantees — its "tables and figures") at full size.

   Part 2 runs Bechamel micro-benchmarks of the core operations whose
   asymptotics Theorem 5 talks about: H-graph splices, whole-deletion
   repairs, the eigensolvers used by the metrics, and the distributed
   protocols.

   Run with: dune exec bench/main.exe
   (pass --quick for the reduced sizes, --skip-micro to omit part 2) *)

module Gen = Xheal_graph.Generators
module Graph = Xheal_graph.Graph
module Spectral = Xheal_linalg.Spectral
module Hgraph = Xheal_expander.Hgraph
module Xheal = Xheal_core.Xheal
module Election = Xheal_distributed.Election
module Fault_plan = Xheal_distributed.Fault_plan
module Schedule = Xheal_distributed.Schedule
module Dist_repair = Xheal_distributed.Dist_repair

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables.                                         *)

let run_experiments ~quick =
  print_endline "=====================================================";
  print_endline " Xheal (PODC 2011) — experiment reproduction";
  print_endline "=====================================================";
  Printf.printf " mode: %s\n\n" (if quick then "quick" else "full");
  let ok = Xheal_experiments.Registry.run_all ~quick ~out:print_string () in
  Printf.printf "experiment claims: %s\n\n" (if ok then "ALL PASS" else "SOME FAILED");
  ok

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks.                                 *)

open Bechamel
open Toolkit

let bench_hgraph_splice () =
  let rng = Random.State.make [| 1 |] in
  let h = Hgraph.create ~rng ~d:2 (List.init 256 Fun.id) in
  let next = ref 1000 in
  Test.make ~name:"hgraph-splice(n=256,d=2)"
    (Staged.stage (fun () ->
         Hgraph.insert ~rng h !next;
         Hgraph.delete h !next;
         incr next))

let bench_xheal_repair name n =
  let rng = Random.State.make [| 2 |] in
  let eng = Xheal.create ~rng (Gen.random_regular ~rng n 4) in
  let next = ref (10 * n) in
  let atk = Random.State.make [| 3 |] in
  Test.make ~name
    (Staged.stage (fun () ->
         (* Steady-state churn: one deletion (with repair) + one insertion
            keeps the network size constant across iterations. *)
         let g = Xheal.graph eng in
         let nodes = Graph.nodes g in
         let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
         let nbrs = List.filteri (fun i _ -> i < 3) (Graph.neighbors g v) in
         Xheal.delete eng v;
         let nbrs = List.filter (Graph.has_node (Xheal.graph eng)) nbrs in
         Xheal.insert eng ~node:!next ~neighbors:nbrs;
         incr next))

let bench_lambda2_dense () =
  let g = Gen.random_regular ~rng:(Random.State.make [| 4 |]) 96 4 in
  Test.make ~name:"lambda2-dense-jacobi(n=96)" (Staged.stage (fun () -> ignore (Spectral.lambda2 g)))

let bench_lambda2_lanczos () =
  let g = Gen.random_regular ~rng:(Random.State.make [| 5 |]) 512 4 in
  Test.make ~name:"lambda2-lanczos(n=512)" (Staged.stage (fun () -> ignore (Spectral.lambda2 g)))

let bench_election () =
  let rng = Random.State.make [| 6 |] in
  let parts = List.init 64 Fun.id in
  Test.make ~name:"election-protocol(m=64)" (Staged.stage (fun () -> ignore (Election.run ~rng parts)))

let bench_faulty_election () =
  let rng = Random.State.make [| 11 |] in
  let parts = List.init 64 Fun.id in
  let plan = Fault_plan.make ~seed:7 ~drop:0.1 () in
  Test.make ~name:"election-faulty(m=64,drop=0.1)"
    (Staged.stage (fun () -> ignore (Election.run_robust ~rng ~plan ~max_rounds:400 parts)))

let bench_async_repair () =
  let rng = Random.State.make [| 12 |] in
  let neighbors = List.init 32 Fun.id in
  let schedule = Schedule.async ~seed:12 ~fairness:8 in
  Test.make ~name:"case1-repair-async(m=32,F=8)"
    (Staged.stage (fun () ->
         ignore
           (Dist_repair.primary_build ~rng ~schedule ~max_rounds:5_000 ~d:2 ~neighbors ())))

let bench_batch_deletion () =
  let rng = Random.State.make [| 8 |] in
  let eng = Xheal.create ~rng (Gen.random_regular ~rng 256 4) in
  let next = ref 10_000 in
  let atk = Random.State.make [| 9 |] in
  Test.make ~name:"xheal-batch-step(5 victims,n=256)"
    (Staged.stage (fun () ->
         let g = Xheal.graph eng in
         let nodes = Graph.nodes g in
         let victims =
           List.filteri (fun i _ -> i < 5) (Gen.shuffle_list ~rng:atk nodes)
         in
         Xheal.delete_many eng victims;
         (* Refill to keep the size steady. *)
         List.iter
           (fun _ ->
             let g = Xheal.graph eng in
             let ns = Graph.nodes g in
             let nbrs = List.filteri (fun i _ -> i < 3) ns in
             Xheal.insert eng ~node:!next ~neighbors:nbrs;
             incr next)
           victims))

let bench_routing_tables () =
  let g = Gen.random_h_graph ~rng:(Random.State.make [| 10 |]) 128 2 in
  Test.make ~name:"routing-tables-build(n=128)"
    (Staged.stage (fun () -> ignore (Xheal_routing.Tables.build g)))

let bench_exact_expansion () =
  let g = Gen.random_h_graph ~rng:(Random.State.make [| 7 |]) 14 2 in
  Test.make ~name:"exact-expansion(n=14)"
    (Staged.stage (fun () -> ignore (Xheal_graph.Cuts.exact_expansion g)))

let micro_tests () =
  Test.make_grouped ~name:"xheal"
    [
      bench_hgraph_splice ();
      bench_xheal_repair "xheal-churn-step(n=64)" 64;
      bench_xheal_repair "xheal-churn-step(n=256)" 256;
      bench_lambda2_dense ();
      bench_lambda2_lanczos ();
      bench_election ();
      bench_faulty_election ();
      bench_async_repair ();
      bench_exact_expansion ();
      bench_batch_deletion ();
      bench_routing_tables ();
    ]

let run_micro () =
  print_endline "=====================================================";
  print_endline " Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "=====================================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  (* One section per measure (a single instance in practice); rows are
     sorted by name below, so hash order never reaches the output. *)
  (* xlint: order-independent *)
  Hashtbl.iter
    (fun measure per_test ->
      Printf.printf "\n  [%s]\n" measure;
      let rows =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold
             (fun name ols_result acc ->
               let est =
                 match Analyze.OLS.estimates ols_result with
                 | Some (x :: _) -> Printf.sprintf "%12.1f ns/run" x
                 | _ -> "            n/a"
               in
               (name, est) :: acc)
             per_test [])
      in
      List.iter (fun (name, est) -> Printf.printf "  %-32s %s\n" name est) rows)
    merged;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let skip_micro = List.mem "--skip-micro" args in
  let ok = run_experiments ~quick in
  if not skip_micro then run_micro ();
  if not ok then exit 1
