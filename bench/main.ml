(* The benchmark/reproduction harness.

   Three scenarios, each wrapped in wall-clock timing (legal here in
   bench/ — the determinism lint only forbids it under lib/) and each
   writing a machine-readable BENCH_<name>.json next to the executable:

   - experiments: regenerates every experiment table of DESIGN.md §4
     (the paper's theorem guarantees) at full size.
   - repair: a seeded deletion attack with the observability scope
     attached — the engine runs instrumented and every deletion's
     recorded operations replay as real protocols, so the emitted JSON
     carries the per-phase message/round breakdown (E7's quantity) plus
     the full metrics dumps.
   - micro: Bechamel micro-benchmarks of the core operations whose
     asymptotics Theorem 5 talks about: H-graph splices, whole-deletion
     repairs, the eigensolvers used by the metrics, and the distributed
     protocols.

   The repair scenario also runs the scaling tier: the engine at
   n = 10^4 (and 10^5 in full mode; --huge adds a 10^6-node smoke
   cell) under seeded random deletions, each cell emitted as a
   "scaling" row — cost totals, a wall-clock budget, and the
   flamegraph-style span aggregate (Tracer.aggregate).

   Run with: dune exec bench/main.exe
   (--quick for reduced sizes, --skip-micro to omit the micro scenario,
   --huge to add the million-node scaling cell,
   --only <experiments|repair|micro> to run a single scenario — the
   @bench-smoke alias uses `--quick --only repair`.)

   BENCH_<name>.json schema ("xheal-bench/1"): { schema, name, mode,
   wall_ms, ... } — see EXPERIMENTS.md "Machine-readable bench output". *)

module Gen = Xheal_graph.Generators
module Graph = Xheal_graph.Graph
module Spectral = Xheal_linalg.Spectral
module Hgraph = Xheal_expander.Hgraph
module Xheal = Xheal_core.Xheal
module Election = Xheal_distributed.Election
module Fault_plan = Xheal_distributed.Fault_plan
module Schedule = Xheal_distributed.Schedule
module Dist_repair = Xheal_distributed.Dist_repair
module Replay = Xheal_distributed.Replay
module Scope = Xheal_obs.Scope
module Metrics = Xheal_obs.Metrics
module Tracer = Xheal_obs.Tracer
module Jsonw = Xheal_obs.Jsonw
module Cost = Xheal_core.Cost

(* ------------------------------------------------------------------ *)
(* BENCH_<name>.json output.                                          *)

let mode_name quick = if quick then "quick" else "full"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let write_bench ~name ~quick ~wall_ms extra =
  let json =
    Jsonw.Obj
      ([
         ("schema", Jsonw.String "xheal-bench/1");
         ("name", Jsonw.String name);
         ("mode", Jsonw.String (mode_name quick));
         ("wall_ms", Jsonw.Float wall_ms);
       ]
      @ extra)
  in
  let file = "BENCH_" ^ name ^ ".json" in
  let oc = open_out file in
  output_string oc (Jsonw.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s (wall %.1f ms)\n%!" file wall_ms

(* A sweep cell with zero repairs would make naive per-repair averages
   divide by zero; Cost guards those with an explicit 0-on-empty, and we
   additionally refuse to emit a non-finite number — "nan" would not
   even parse back as JSON. *)
let finite_num x = if Float.is_finite x then Jsonw.Float x else Jsonw.Null

(* [repair.phase.<p>.{messages,rounds,runs}] counters, regrouped as one
   JSON row per phase. *)
let phase_rows reg =
  let cs = Metrics.counters reg in
  let get name = Option.value ~default:0 (List.assoc_opt name cs) in
  List.filter_map
    (fun (name, messages) ->
      let prefix = "repair.phase." and suffix = ".messages" in
      if String.starts_with ~prefix name && String.ends_with ~suffix name then begin
        let p =
          String.sub name (String.length prefix)
            (String.length name - String.length prefix - String.length suffix)
        in
        Some
          (Jsonw.Obj
             [
               ("phase", Jsonw.String p);
               ("messages", Jsonw.Int messages);
               ("rounds", Jsonw.Int (get (prefix ^ p ^ ".rounds")));
               ("runs", Jsonw.Int (get (prefix ^ p ^ ".runs")));
             ])
      end
      else None)
    cs

(* ------------------------------------------------------------------ *)
(* Scenario: experiment tables.                                       *)

let scenario_experiments ~quick =
  print_endline "=====================================================";
  print_endline " Xheal (PODC 2011) — experiment reproduction";
  print_endline "=====================================================";
  Printf.printf " mode: %s\n\n" (mode_name quick);
  let ok, wall_ms =
    timed (fun () -> Xheal_experiments.Registry.run_all ~quick ~out:print_string ())
  in
  Printf.printf "experiment claims: %s\n" (if ok then "ALL PASS" else "SOME FAILED");
  (* E14's fixed Byzantine scenario, one row per defense configuration:
     what each counter-measure costs in messages/words, with the
     Confirm/Vote deliveries (the defense's own traffic) broken out. *)
  let overhead_rows =
    List.map
      (fun (defense, messages, words, confirms, votes) ->
        Jsonw.Obj
          [
            ("defense", Jsonw.String defense);
            ("messages", Jsonw.Int messages);
            ("words", Jsonw.Int words);
            ("confirms", Jsonw.Int confirms);
            ("votes", Jsonw.Int votes);
          ])
      (Xheal_experiments.E14_byzantine.overhead ())
  in
  (* E15's fault-aware re-pricing sweep: the amortized message bound
     re-measured under loss x fairness x Byzantine fraction, plus the
     defense-policy trio rows (static-none / adaptive / static-all). *)
  let e15_rows =
    List.map
      (fun (r : Xheal_experiments.E15_repricing.row) ->
        Jsonw.Obj
          [
            ("loss", Jsonw.Float r.loss);
            ("fairness", Jsonw.Int r.fairness);
            ("byz", Jsonw.Float r.byz_frac);
            ("policy", Jsonw.String r.policy);
            ("repairs", Jsonw.Int r.repairs);
            ("messages", Jsonw.Int r.messages);
            ("rounds", Jsonw.Int r.rounds);
            ("amortized", finite_num r.amortized);
            ("overhead", finite_num r.overhead);
            ("escalations", Jsonw.Int r.escalations);
            ("unconverged", Jsonw.Int r.unconverged);
          ])
      (Xheal_experiments.E15_repricing.rows ())
  in
  (* E17's detector sweep: crash cells (detection latency vs bound under
     loss x fairness) and crash-free cells (false-suspicion refutation).
     Counters are deterministic ints, so the baseline pins them exactly. *)
  let e17_rows =
    List.map
      (fun (r : Xheal_experiments.E17_detector.row) ->
        Jsonw.Obj
          [
            ("loss", Jsonw.Float r.loss);
            ("fairness", Jsonw.Int r.fairness);
            ("mode", Jsonw.String (if r.crashed then "crash" else "quiet"));
            ("trials", Jsonw.Int r.trials);
            ("detected", Jsonw.Int r.detected);
            ("mean_latency", finite_num r.mean_latency);
            ("max_latency", Jsonw.Int r.max_latency);
            ("bound", Jsonw.Int r.bound);
            ("suspicions", Jsonw.Int r.suspicions);
            ("refutations", Jsonw.Int r.refutations);
            ("messages", Jsonw.Int r.messages);
          ])
      (Xheal_experiments.E17_detector.rows ())
  in
  write_bench ~name:"experiments" ~quick ~wall_ms
    [
      ("ok", Jsonw.Bool ok);
      ("byzantine_overhead", Jsonw.List overhead_rows);
      ("e15_repricing", Jsonw.List e15_rows);
      ("e17_detector", Jsonw.List e17_rows);
    ];
  print_newline ();
  ok

(* ------------------------------------------------------------------ *)
(* Scaling tier: the engine at 10^4–10^6 nodes.                       *)

(* Per-cell wall-clock ceiling, generous enough to never flake on a
   loaded machine but tight enough that a super-linear regression in
   the repair path (the CSR graph core's whole reason to exist) blows
   through it. bench_check enforces wall_ms <= budget_ms per row. The
   small full-mode cell deletes its entire graph — the endgame repairs
   on a fully-healed remnant dominate, hence its larger allowance. *)
let scaling_budget_ms n =
  if n >= 1_000_000 then 600_000. else if n > 20_000 then 300_000. else 180_000.

(* One scaling cell: seed a degree-2 H-graph backbone of [n] nodes
   (O(n) construction, connected), run [deletions] seeded random
   deletions through the observed engine, and report the cost totals
   plus the flamegraph-style span aggregate. Victims come from a
   swap-remove alive array — O(1) per pick, no per-deletion
   [Graph.nodes] materialization. *)
let scaling_cell ~n ~deletions =
  let obs = Scope.create () in
  let rng = Random.State.make [| 1009; n |] in
  let eng = Xheal.create ~obs ~rng (Gen.random_h_graph ~rng n 2) in
  let atk = Random.State.make [| 1013; n |] in
  let alive = Array.init n Fun.id in
  let live = ref n in
  let (), wall_ms =
    timed (fun () ->
        for _ = 1 to deletions do
          let i = Random.State.int atk !live in
          let v = alive.(i) in
          alive.(i) <- alive.(!live - 1);
          decr live;
          Xheal.delete eng v
        done)
  in
  let tot = Xheal.totals eng in
  let spans =
    List.map
      (fun (a : Tracer.agg) ->
        Jsonw.Obj
          [
            ("name", Jsonw.String a.Tracer.agg_name);
            ("count", Jsonw.Int a.Tracer.count);
            ("total", Jsonw.Int a.Tracer.total);
            ("self", Jsonw.Int a.Tracer.self);
          ])
      (Tracer.aggregate obs.Scope.tracer)
  in
  Printf.printf "  scaling n=%-8d deletions=%-6d wall=%9.1f ms messages=%d\n%!" n
    deletions wall_ms tot.Cost.total_messages;
  Jsonw.Obj
    [
      ("tier", Jsonw.String "scaling/1");
      ("n", Jsonw.Int n);
      ("deletions", Jsonw.Int deletions);
      ("repairs", Jsonw.Int tot.Cost.deletions);
      ("wall_ms", Jsonw.Float wall_ms);
      ("budget_ms", Jsonw.Float (scaling_budget_ms n));
      ("messages", Jsonw.Int tot.Cost.total_messages);
      ("rounds", Jsonw.Int tot.Cost.total_rounds);
      ("edges_added", Jsonw.Int tot.Cost.total_edges_added);
      ("edges_removed", Jsonw.Int tot.Cost.total_edges_removed);
      ("spans", Jsonw.List spans);
    ]

let scaling_rows ~quick ~huge =
  let cells =
    if quick then [ (10_000, 300) ] else [ (10_000, 10_000); (100_000, 10_000) ]
  in
  let cells = if huge then cells @ [ (1_000_000, 1_000) ] else cells in
  List.map (fun (n, deletions) -> scaling_cell ~n ~deletions) cells

(* ------------------------------------------------------------------ *)
(* E16: online-monitor overhead. The same seeded attack twice — once
   bare, once with the invariant observatory at cadence 1 — so the row
   carries both the wall-clock premium and a bench-level passivity
   proof: the engine's message totals must be identical either way
   (bench_check enforces it, plus checks > 0 and zero violations on
   this standard sweep). *)

let e16_monitor_row ~quick =
  let module Monitor = Xheal_obs.Monitor in
  let n = if quick then 48 else 128 in
  let deletions = if quick then 12 else 40 in
  let run with_monitor =
    let rng = Random.State.make [| 46 |] in
    let g = Gen.random_regular ~rng n 4 in
    let monitor =
      if with_monitor then
        Some
          (Monitor.create
             ~config:{ Monitor.default_config with Monitor.cadence = 1; seed = 46 }
             g)
      else None
    in
    let eng = Xheal.create ?monitor ~rng g in
    let atk = Random.State.make [| 47 |] in
    let (), wall_ms =
      timed (fun () ->
          for _ = 1 to deletions do
            let nodes = Graph.nodes (Xheal.graph eng) in
            let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
            Xheal.delete eng v
          done)
    in
    ((Xheal.totals eng).Cost.total_messages, monitor, wall_ms)
  in
  let messages_off, _, wall_off = run false in
  let messages_on, monitor, wall_on = run true in
  let monitor = Option.get monitor in
  Printf.printf
    "  e16 monitor overhead: wall %.1f -> %.1f ms, %d checks, %d events, %d violations\n%!"
    wall_off wall_on (Monitor.checks monitor) (Monitor.num_events monitor)
    (Monitor.num_violations monitor);
  Jsonw.Obj
    [
      ("n", Jsonw.Int n);
      ("deletions", Jsonw.Int deletions);
      ("messages_off", Jsonw.Int messages_off);
      ("messages_on", Jsonw.Int messages_on);
      ("wall_off_ms", Jsonw.Float wall_off);
      ("wall_on_ms", Jsonw.Float wall_on);
      ("checks", Jsonw.Int (Monitor.checks monitor));
      ("events", Jsonw.Int (Monitor.num_events monitor));
      ("violations", Jsonw.Int (Monitor.num_violations monitor));
    ]

(* ------------------------------------------------------------------ *)
(* Scenario: observed end-to-end repair.                              *)

let scenario_repair ~quick ~huge =
  print_endline "=====================================================";
  print_endline " Observed repair scenario (engine + protocol replay)";
  print_endline "=====================================================";
  (* Two scopes, two clocks: the engine traces on the cost-model round
     charges, the replay on simulated virtual time — mixing them on one
     timeline would interleave incomparable timestamps. *)
  let engine_obs = Scope.create () in
  let net_obs = Scope.create () in
  let n = if quick then 48 else 192 in
  let deletions = if quick then 12 else 60 in
  let (total, converged), wall_ms =
    timed (fun () ->
        let rng = Random.State.make [| 42 |] in
        let eng = Xheal.create ~obs:engine_obs ~rng (Gen.random_regular ~rng n 4) in
        let atk = Random.State.make [| 43 |] in
        let prng = Random.State.make [| 44 |] in
        let total = ref 0 and converged = ref true in
        for _ = 1 to deletions do
          let nodes = Graph.nodes (Xheal.graph eng) in
          let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
          Xheal.delete eng v;
          let s =
            Replay.deletion ~rng:prng ~obs:net_obs ~max_rounds:10_000 ~d:2
              (Xheal.last_ops eng)
          in
          total := !total + s.Dist_repair.messages;
          converged := !converged && s.Dist_repair.converged
        done;
        (!total, !converged))
  in
  Printf.printf " n=%d deletions=%d replayed messages=%d converged=%b\n" n deletions
    total converged;
  let scaling = scaling_rows ~quick ~huge in
  let e16 = e16_monitor_row ~quick in
  write_bench ~name:"repair" ~quick ~wall_ms
    [
      ("n", Jsonw.Int n);
      ("deletions", Jsonw.Int deletions);
      ("replayed_messages", Jsonw.Int total);
      ("converged", Jsonw.Bool converged);
      ("e16_monitor", e16);
      ("scaling", Jsonw.List scaling);
      ("phases", Jsonw.List (phase_rows net_obs.Scope.metrics));
      ( "metrics",
        Jsonw.Obj
          [
            ("engine", Scope.metrics_json engine_obs);
            ("net", Scope.metrics_json net_obs);
          ] );
    ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Scenario: Bechamel micro-benchmarks.                               *)

open Bechamel
open Toolkit

let bench_hgraph_splice () =
  let rng = Random.State.make [| 1 |] in
  let h = Hgraph.create ~rng ~d:2 (List.init 256 Fun.id) in
  let next = ref 1000 in
  Test.make ~name:"hgraph-splice(n=256,d=2)"
    (Staged.stage (fun () ->
         Hgraph.insert ~rng h !next;
         Hgraph.delete h !next;
         incr next))

let bench_xheal_repair name n =
  let rng = Random.State.make [| 2 |] in
  let eng = Xheal.create ~rng (Gen.random_regular ~rng n 4) in
  let next = ref (10 * n) in
  let atk = Random.State.make [| 3 |] in
  Test.make ~name
    (Staged.stage (fun () ->
         (* Steady-state churn: one deletion (with repair) + one insertion
            keeps the network size constant across iterations. *)
         let g = Xheal.graph eng in
         let nodes = Graph.nodes g in
         let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
         let nbrs = List.filteri (fun i _ -> i < 3) (Graph.neighbors g v) in
         Xheal.delete eng v;
         let nbrs = List.filter (Graph.has_node (Xheal.graph eng)) nbrs in
         Xheal.insert eng ~node:!next ~neighbors:nbrs;
         incr next))

let bench_lambda2_dense () =
  let g = Gen.random_regular ~rng:(Random.State.make [| 4 |]) 96 4 in
  Test.make ~name:"lambda2-dense-jacobi(n=96)" (Staged.stage (fun () -> ignore (Spectral.lambda2 g)))

let bench_lambda2_lanczos () =
  let g = Gen.random_regular ~rng:(Random.State.make [| 5 |]) 512 4 in
  Test.make ~name:"lambda2-lanczos(n=512)" (Staged.stage (fun () -> ignore (Spectral.lambda2 g)))

let bench_election () =
  let rng = Random.State.make [| 6 |] in
  let parts = List.init 64 Fun.id in
  Test.make ~name:"election-protocol(m=64)" (Staged.stage (fun () -> ignore (Election.run ~rng parts)))

let bench_faulty_election () =
  let rng = Random.State.make [| 11 |] in
  let parts = List.init 64 Fun.id in
  let plan = Fault_plan.make ~seed:7 ~drop:0.1 () in
  Test.make ~name:"election-faulty(m=64,drop=0.1)"
    (Staged.stage (fun () -> ignore (Election.run_robust ~rng ~plan ~max_rounds:400 parts)))

let bench_async_repair () =
  let rng = Random.State.make [| 12 |] in
  let neighbors = List.init 32 Fun.id in
  let schedule = Schedule.async ~seed:12 ~fairness:8 in
  Test.make ~name:"case1-repair-async(m=32,F=8)"
    (Staged.stage (fun () ->
         ignore
           (Dist_repair.primary_build ~rng ~schedule ~max_rounds:5_000 ~d:2 ~neighbors ())))

let bench_batch_deletion () =
  let rng = Random.State.make [| 8 |] in
  let eng = Xheal.create ~rng (Gen.random_regular ~rng 256 4) in
  let next = ref 10_000 in
  let atk = Random.State.make [| 9 |] in
  Test.make ~name:"xheal-batch-step(5 victims,n=256)"
    (Staged.stage (fun () ->
         let g = Xheal.graph eng in
         let nodes = Graph.nodes g in
         let victims =
           List.filteri (fun i _ -> i < 5) (Gen.shuffle_list ~rng:atk nodes)
         in
         Xheal.delete_many eng victims;
         (* Refill to keep the size steady. *)
         List.iter
           (fun _ ->
             let g = Xheal.graph eng in
             let ns = Graph.nodes g in
             let nbrs = List.filteri (fun i _ -> i < 3) ns in
             Xheal.insert eng ~node:!next ~neighbors:nbrs;
             incr next)
           victims))

let bench_routing_tables () =
  let g = Gen.random_h_graph ~rng:(Random.State.make [| 10 |]) 128 2 in
  Test.make ~name:"routing-tables-build(n=128)"
    (Staged.stage (fun () -> ignore (Xheal_routing.Tables.build g)))

let bench_exact_expansion () =
  let g = Gen.random_h_graph ~rng:(Random.State.make [| 7 |]) 14 2 in
  Test.make ~name:"exact-expansion(n=14)"
    (Staged.stage (fun () -> ignore (Xheal_graph.Cuts.exact_expansion g)))

let micro_tests () =
  Test.make_grouped ~name:"xheal"
    [
      bench_hgraph_splice ();
      bench_xheal_repair "xheal-churn-step(n=64)" 64;
      bench_xheal_repair "xheal-churn-step(n=256)" 256;
      bench_lambda2_dense ();
      bench_lambda2_lanczos ();
      bench_election ();
      bench_faulty_election ();
      bench_async_repair ();
      bench_exact_expansion ();
      bench_batch_deletion ();
      bench_routing_tables ();
    ]

let scenario_micro ~quick =
  print_endline "=====================================================";
  print_endline " Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "=====================================================";
  let rows, wall_ms =
    timed (fun () ->
        let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
        let instances = Instance.[ monotonic_clock ] in
        let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
        let raw = Benchmark.all cfg instances (micro_tests ()) in
        let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
        let merged = Analyze.merge ols instances results in
        let rows = ref [] in
        (* One section per measure (a single instance in practice); rows
           are sorted by name below, so hash order never reaches the
           output. *)
        (* xlint: order-independent *)
        Hashtbl.iter
          (fun measure per_test ->
            Printf.printf "\n  [%s]\n" measure;
            let section =
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                (Hashtbl.fold
                   (fun name ols_result acc ->
                     let est =
                       match Analyze.OLS.estimates ols_result with
                       | Some (x :: _) -> Some x
                       | _ -> None
                     in
                     (name, est) :: acc)
                   per_test [])
            in
            List.iter
              (fun (name, est) ->
                (match est with
                | Some x -> Printf.printf "  %-32s %12.1f ns/run\n" name x
                | None -> Printf.printf "  %-32s             n/a\n" name);
                rows :=
                  Jsonw.Obj
                    [
                      ("name", Jsonw.String name);
                      ("measure", Jsonw.String measure);
                      ( "ns_per_run",
                        match est with Some x -> Jsonw.Float x | None -> Jsonw.Null );
                    ]
                  :: !rows)
              section)
          merged;
        List.rev !rows)
  in
  write_bench ~name:"micro" ~quick ~wall_ms [ ("rows", Jsonw.List rows) ];
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let huge = List.mem "--huge" args in
  let skip_micro = List.mem "--skip-micro" args in
  let rec find_only = function
    | "--only" :: v :: _ -> Some v
    | _ :: rest -> find_only rest
    | [] -> None
  in
  let only = find_only args in
  (match only with
  | Some ("experiments" | "repair" | "micro") | None -> ()
  | Some o ->
    Printf.eprintf "unknown scenario %S (expected experiments|repair|micro)\n" o;
    exit 2);
  let selected name = match only with None -> true | Some o -> String.equal o name in
  let ok = if selected "experiments" then scenario_experiments ~quick else true in
  if selected "repair" then scenario_repair ~quick ~huge;
  if selected "micro" && not skip_micro then scenario_micro ~quick;
  if not ok then exit 1
