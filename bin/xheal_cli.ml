(* Command-line front-end: run experiments, run custom attacks, export
   DOT snapshots. `xheal_cli --help` lists everything. *)

module Graph = Xheal_graph.Graph
module Generators = Xheal_graph.Generators
module Traversal = Xheal_graph.Traversal
module Dot = Xheal_graph.Dot
module Healer = Xheal_core.Healer
module Cost = Xheal_core.Cost
module Driver = Xheal_adversary.Driver
module Strategy = Xheal_adversary.Strategy
module Expansion = Xheal_metrics.Expansion
module Degree = Xheal_metrics.Degree
module Stretch = Xheal_metrics.Stretch
module Registry = Xheal_experiments.Registry
module Fault_plan = Xheal_distributed.Fault_plan
module Schedule = Xheal_distributed.Schedule
module Dist_repair = Xheal_distributed.Dist_repair
module Replay = Xheal_distributed.Replay
module Scope = Xheal_obs.Scope
module Chrome_trace = Xheal_obs.Chrome_trace

open Cmdliner

(* ---------- shared argument parsing ---------- *)

let parse_shape s =
  match String.split_on_char ':' s with
  | [ "star"; n ] -> Ok (`Star (int_of_string n))
  | [ "path"; n ] -> Ok (`Path (int_of_string n))
  | [ "cycle"; n ] -> Ok (`Cycle (int_of_string n))
  | [ "grid"; r; c ] -> Ok (`Grid (int_of_string r, int_of_string c))
  | [ "regular"; n; d ] -> Ok (`Regular (int_of_string n, int_of_string d))
  | [ "er"; n; p ] -> Ok (`Er (int_of_string n, float_of_string p))
  | [ "hgraph"; n; d ] -> Ok (`Hgraph (int_of_string n, int_of_string d))
  | [ "pa"; n; k ] -> Ok (`Pa (int_of_string n, int_of_string k))
  | _ ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown shape %S (try star:N, path:N, cycle:N, grid:R:C, regular:N:D, er:N:P, hgraph:N:D, pa:N:K)"
           s))

let build_shape ~rng = function
  | `Star n -> Generators.star n
  | `Path n -> Generators.path n
  | `Cycle n -> Generators.cycle n
  | `Grid (r, c) -> Generators.grid r c
  | `Regular (n, d) -> Generators.random_regular ~rng n d
  | `Er (n, p) -> Generators.connected_er ~rng n p
  | `Hgraph (n, d) -> Generators.random_h_graph ~rng n d
  | `Pa (n, k) -> Generators.preferential_attachment ~rng n k

let shape_conv =
  let printer ppf _ = Format.fprintf ppf "<shape>" in
  Arg.conv (parse_shape, printer)

let healer_labels () =
  List.map (fun f -> f.Healer.label) (Xheal_baselines.Baselines.all ())

let find_healer label =
  if String.lowercase_ascii label = "xheal" then Some (Xheal_baselines.Baselines.xheal ())
  else Xheal_baselines.Baselines.by_label label

let strategy_of_name ~rng ~first_id = function
  | "random" -> Ok (Strategy.random_delete ~rng ())
  | "hub" -> Ok (Strategy.hub_delete ~rng ())
  | "min-degree" -> Ok (Strategy.min_degree_delete ~rng ())
  | "cutpoint" -> Ok (Strategy.cutpoint_delete ~rng ())
  | "bottleneck" -> Ok (Strategy.bottleneck_delete ~rng ())
  | "churn" -> Ok (Strategy.churn ~rng ~first_id ())
  | "adaptive-churn" -> Ok (Strategy.adaptive_churn ~rng ~first_id ())
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

(* ---------- logging ---------- *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Engine debug logging on stderr.")

(* ---------- experiments command ---------- *)

let experiments_cmd =
  let quick =
    Arg.(value & flag & info [ "q"; "quick" ] ~doc:"Smaller instances (used by the test suite).")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).") in
  let run quick ids =
    let ids = match ids with [] -> None | l -> Some l in
    let ok = Registry.run_all ~quick ?ids ~out:print_string () in
    if ok then `Ok () else `Error (false, "at least one experiment claim failed")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the paper's guarantees (E1-E8, A1, A2).")
    Term.(ret (const run $ quick $ ids))

(* ---------- attack command ---------- *)

let report_driver driver kappa =
  let healed = Driver.graph driver and reference = Driver.gprime driver in
  let hm = Expansion.measure healed and rm = Expansion.measure reference in
  Format.printf "events: %d (deletions %d)@." (Driver.steps driver) (Driver.deletions driver);
  Format.printf "healed : %a@." Expansion.pp hm;
  Format.printf "G'     : %a@." Expansion.pp rm;
  Format.printf "components: %d@." (Traversal.num_components healed);
  let deg = Degree.report ~kappa ~healed ~reference in
  Format.printf "degree : max ratio %.2f, slack %d (limit %d), ok %b@." deg.Degree.max_ratio
    deg.Degree.max_additive_slack (2 * kappa) deg.Degree.bound_ok;
  let st = Stretch.report ~healed ~reference () in
  Format.printf "stretch: %.2f over %d pairs@." st.Stretch.max_stretch st.Stretch.pairs_checked;
  let t = (Driver.healer driver).Healer.totals () in
  Format.printf "cost   : %.1f msgs/del (A(p)=%.1f), worst %d rounds, %d combines@."
    (Cost.amortized_messages t) (Cost.amortized_lower_bound t) t.Cost.max_rounds t.Cost.combines

let attack_cmd =
  let shape =
    Arg.(value & opt shape_conv (`Er (64, 0.08)) & info [ "shape" ] ~docv:"SHAPE" ~doc:"Initial network (e.g. er:64:0.08, star:65, grid:8:8).")
  in
  let healer =
    Arg.(value & opt string "xheal" & info [ "healer" ] ~docv:"HEALER" ~doc:"Healing strategy (see `list').")
  in
  let strategy =
    Arg.(value & opt string "random" & info [ "strategy" ] ~docv:"STRAT" ~doc:"random | hub | min-degree | cutpoint | bottleneck | churn | adaptive-churn.")
  in
  let steps = Arg.(value & opt int 30 & info [ "steps" ] ~docv:"N" ~doc:"Number of adversarial events.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the healed graph as DOT.")
  in
  let run verbose shape healer strategy steps seed dot_out =
    setup_logs verbose;
    match find_healer healer with
    | None ->
      `Error (false, Printf.sprintf "unknown healer %S (known: %s)" healer (String.concat ", " (healer_labels ())))
    | Some factory -> (
      let rng = Random.State.make [| seed |] in
      let initial = build_shape ~rng shape in
      let atk = Random.State.make [| seed + 1 |] in
      match strategy_of_name ~rng:atk ~first_id:(10 * Graph.num_nodes initial) strategy with
      | Error e -> `Error (false, e)
      | Ok strat ->
        let driver = Driver.init factory ~rng initial in
        ignore (Driver.run driver strat ~steps);
        report_driver driver 4;
        Option.iter (fun path -> Dot.write_file path (Driver.graph driver)) dot_out;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run one adversarial scenario against one healer and report the guarantees.")
    Term.(ret (const run $ verbose_flag $ shape $ healer $ strategy $ steps $ seed $ dot_out))

(* ---------- batch command ---------- *)

let batch_cmd =
  let shape =
    Arg.(value & opt shape_conv (`Er (64, 0.08)) & info [ "shape" ] ~docv:"SHAPE" ~doc:"Initial network.")
  in
  let batch = Arg.(value & opt int 4 & info [ "batch" ] ~docv:"K" ~doc:"Victims per timestep.") in
  let timesteps = Arg.(value & opt int 5 & info [ "timesteps" ] ~docv:"T" ~doc:"Number of batch deletions.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let run verbose shape batch timesteps seed =
    setup_logs verbose;
    let rng = Random.State.make [| seed |] in
    let initial = build_shape ~rng shape in
    let eng = Xheal_core.Xheal.create ~rng initial in
    let atk = Random.State.make [| seed + 1 |] in
    for step = 1 to timesteps do
      let nodes = Graph.nodes (Xheal_core.Xheal.graph eng) in
      if List.length nodes > batch + 4 then begin
        let victims =
          List.filteri (fun i _ -> i < batch)
            (Xheal_graph.Generators.shuffle_list ~rng:atk nodes)
        in
        Xheal_core.Xheal.delete_many eng victims;
        let g = Xheal_core.Xheal.graph eng in
        Format.printf "t=%d: deleted %d nodes -> n=%d m=%d clouds=%d connected=%b@." step
          (List.length victims) (Graph.num_nodes g) (Graph.num_edges g)
          (Xheal_core.Xheal.num_clouds eng)
          (Traversal.is_connected g)
      end
    done;
    let healed = Xheal_core.Xheal.graph eng in
    let hm = Expansion.measure healed in
    Format.printf "final: %a@." Expansion.pp hm;
    match Xheal_core.Xheal.check eng with
    | Ok () -> Format.printf "invariants: ok@."
    | Error e -> Format.printf "invariants: BROKEN (%s)@." e
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Multi-deletion timesteps (the paper's batch extension) against Xheal.")
    Term.(const run $ verbose_flag $ shape $ batch $ timesteps $ seed)

(* ---------- trace command ---------- *)

let trace_cmd =
  let shape =
    Arg.(value & opt shape_conv (`Er (48, 0.1)) & info [ "shape" ] ~docv:"SHAPE" ~doc:"Initial network.")
  in
  let steps = Arg.(value & opt int 10 & info [ "steps" ] ~docv:"N" ~doc:"Number of deletions to trace.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed; same seed, same bytes.") in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc:"Message drop probability (0 = fault-free).")
  in
  let fairness =
    Arg.(value & opt int 0 & info [ "async" ] ~docv:"F" ~doc:"Asynchronous delivery with fairness bound F (0 = synchronous).")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Chrome-trace output file (load in chrome://tracing or Perfetto).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Also dump the flat metrics registry as JSON.")
  in
  let aggregate =
    Arg.(value & flag & info [ "aggregate" ] ~doc:"Print a flamegraph-style per-span summary (count, total, self) on stdout.")
  in
  let run verbose shape steps seed drop fairness out metrics_out aggregate =
    setup_logs verbose;
    let rng = Random.State.make [| seed |] in
    let initial = build_shape ~rng shape in
    let eng = Xheal_core.Xheal.create ~rng initial in
    let atk = Random.State.make [| seed + 1 |] in
    let prng = Random.State.make [| seed + 2 |] in
    (* The replayed protocols trace on simulated virtual time, one node
       per track; the engine itself stays unobserved so the trace keeps
       a single clock. *)
    let obs = Scope.create () in
    let plan =
      if drop > 0.0 then Fault_plan.make ~seed:(seed + 3) ~drop () else Fault_plan.none
    in
    let schedule =
      if fairness > 0 then Schedule.async ~seed:(seed + 4) ~fairness else Schedule.sync
    in
    let messages = ref 0 and converged = ref true and deleted = ref 0 in
    for _ = 1 to steps do
      let nodes = Graph.nodes (Xheal_core.Xheal.graph eng) in
      if List.length nodes > 4 then begin
        let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
        Xheal_core.Xheal.delete eng v;
        incr deleted;
        let s =
          Replay.deletion ~rng:prng ~obs ~plan ~schedule ~max_rounds:10_000 ~d:2
            (Xheal_core.Xheal.last_ops eng)
        in
        messages := !messages + s.Dist_repair.messages;
        converged := !converged && s.Dist_repair.converged
      end
    done;
    match Xheal_obs.Tracer.check obs.Scope.tracer with
    | Error e -> `Error (false, "trace is malformed: " ^ e)
    | Ok () ->
      Chrome_trace.write_file out obs.Scope.tracer;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Scope.metrics_string obs);
          close_out oc)
        metrics_out;
      if aggregate then begin
        let aggs = Xheal_obs.Tracer.aggregate obs.Scope.tracer in
        Format.printf "%-28s %8s %10s %10s@." "span" "count" "total" "self";
        List.iter
          (fun a ->
            Format.printf "%-28s %8d %10d %10d@." a.Xheal_obs.Tracer.agg_name
              a.Xheal_obs.Tracer.count a.Xheal_obs.Tracer.total a.Xheal_obs.Tracer.self)
          aggs
      end;
      Format.printf "traced %d deletions: %d replayed messages, converged %b@." !deleted
        !messages !converged;
      Format.printf "wrote %s%s@." out
        (match metrics_out with Some p -> " and " ^ p | None -> "");
      `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a seeded deletion attack and export a Chrome-trace JSON (deterministic: same seed, byte-identical file).")
    Term.(
      ret
        (const run $ verbose_flag $ shape $ steps $ seed $ drop $ fairness $ out
       $ metrics_out $ aggregate))

(* ---------- report command ---------- *)

let report_cmd =
  let shape =
    Arg.(value & opt shape_conv (`Er (48, 0.1)) & info [ "shape" ] ~docv:"SHAPE" ~doc:"Initial network.")
  in
  let steps = Arg.(value & opt int 10 & info [ "steps" ] ~docv:"N" ~doc:"Number of deletions to monitor.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed; same seed, same bytes.") in
  let cadence =
    Arg.(value & opt int 1 & info [ "cadence" ] ~docv:"K" ~doc:"Run the guarantee checks every K-th repair.")
  in
  let events_out =
    Arg.(value & opt string "events.jsonl" & info [ "events" ] ~docv:"FILE" ~doc:"Structured event log (one JSON object per line).")
  in
  let out =
    Arg.(value & opt string "report.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Repair-report JSON output file.")
  in
  let detector =
    Arg.(
      value & flag
      & info [ "detector" ]
          ~doc:
            "Replace the deletion oracle with the heartbeat failure detector: every \
             deletion is preceded by a billed 'detect' phase over the victim's \
             neighbourhood, and the report gains a detector block (suspicion/refutation \
             counters, detection-latency summary, Detection-guarantee violations). Off, \
             the output is byte-identical to builds without this flag.")
  in
  let run verbose shape steps seed cadence events_out out detector =
    setup_logs verbose;
    if cadence < 1 then `Error (false, "cadence must be >= 1")
    else begin
      let module Monitor = Xheal_obs.Monitor in
      let module Metrics = Xheal_obs.Metrics in
      let module Jsonw = Xheal_obs.Jsonw in
      let rng = Random.State.make [| seed |] in
      let initial = build_shape ~rng shape in
      let cfg = Xheal_core.Config.default in
      let monitor =
        Monitor.create
          ~config:
            {
              Monitor.default_config with
              Monitor.kappa = Xheal_core.Config.kappa cfg;
              cadence;
              seed = seed + 5;
            }
          initial
      in
      let obs = Scope.create () in
      let detect_cfg = Xheal_fault.Detect.make ~seed:(seed + 7) () in
      let backend =
        if detector then
          Some (Xheal_distributed.Pricing.backend ~seed:(seed + 3) ~d:cfg.Xheal_core.Config.d ())
        else None
      in
      let trigger =
        if detector then Xheal_core.Xheal.Detector detect_cfg else Xheal_core.Xheal.Oracle
      in
      let eng = Xheal_core.Xheal.create ~cfg ~obs ~monitor ?backend ~rng initial in
      let atk = Random.State.make [| seed + 1 |] in
      let repairs = ref [] in
      for _ = 1 to steps do
        let nodes = Graph.nodes (Xheal_core.Xheal.graph eng) in
        if List.length nodes > 4 then begin
          let v = List.nth nodes (Random.State.int atk (List.length nodes)) in
          Xheal_core.Xheal.delete ~trigger eng v;
          Option.iter (fun r -> repairs := r :: !repairs) (Xheal_core.Xheal.last_report eng)
        end
      done;
      let phase_json (p : Cost.phase) =
        Jsonw.Obj
          [
            ("label", Jsonw.String p.Cost.label);
            ("rounds", Jsonw.Int p.Cost.rounds);
            ("messages", Jsonw.Int p.Cost.messages);
          ]
      in
      let repair_json (r : Cost.report) =
        Jsonw.Obj
          [
            ("seq", Jsonw.Int r.Cost.seq);
            ("case", Jsonw.String (Cost.case_to_string r.Cost.case));
            ("rounds", Jsonw.Int r.Cost.rounds);
            ("messages", Jsonw.Int r.Cost.messages);
            ("combined", Jsonw.Bool r.Cost.combined);
            ("edges_added", Jsonw.Int r.Cost.edges_added);
            ("edges_removed", Jsonw.Int r.Cost.edges_removed);
            ("clouds_touched", Jsonw.Int r.Cost.clouds_touched);
            ("converged", Jsonw.Bool r.Cost.faults.Cost.converged);
            ("phases", Jsonw.List (List.map phase_json r.Cost.phases));
          ]
      in
      let detector_block =
        if not detector then []
        else begin
          let counters = Metrics.counters obs.Scope.metrics in
          let c name = Option.value ~default:0 (List.assoc_opt name counters) in
          let latencies =
            List.filter_map
              (function
                | Monitor.Sample s when s.Monitor.s_guarantee = Monitor.Detection ->
                  Some s.Monitor.s_value
                | _ -> None)
              (Monitor.events monitor)
          in
          let missed =
            List.length
              (List.filter
                 (fun (v : Monitor.violation) -> v.Monitor.v_guarantee = Monitor.Detection)
                 (Monitor.violations monitor))
          in
          let mean =
            if latencies = [] then 0.0
            else List.fold_left ( +. ) 0.0 latencies /. float_of_int (List.length latencies)
          in
          [
            ( "detector",
              Jsonw.Obj
                [
                  ( "config",
                    Jsonw.Obj
                      [
                        ("period", Jsonw.Int detect_cfg.Xheal_fault.Detect.period);
                        ("timeout", Jsonw.Int detect_cfg.Xheal_fault.Detect.timeout);
                        ("ladder", Jsonw.Int detect_cfg.Xheal_fault.Detect.ladder);
                        ("confirm", Jsonw.Int detect_cfg.Xheal_fault.Detect.confirm);
                        ("horizon", Jsonw.Int detect_cfg.Xheal_fault.Detect.horizon);
                      ] );
                  ("suspicions", Jsonw.Int (c "xheal.detect.suspicions"));
                  ("refutations", Jsonw.Int (c "xheal.detect.refutations"));
                  ("confirmations", Jsonw.Int (c "xheal.detect.confirmations"));
                  ("detections", Jsonw.Int (List.length latencies));
                  ("mean_latency", Jsonw.Float mean);
                  ("bound_violations", Jsonw.Int missed);
                ] );
          ]
        end
      in
      let report =
        Jsonw.Obj
          ([
             ("schema", Jsonw.String "xheal-report/1");
             ("seed", Jsonw.Int seed);
             ("deletions", Jsonw.Int (List.length !repairs));
             ("monitor", Monitor.report_json monitor);
             ("repairs", Jsonw.List (List.rev_map repair_json !repairs));
             ( "histograms",
               Jsonw.Obj
                 (List.map
                    (fun (name, s) -> (name, Metrics.summary_json s))
                    (Metrics.summaries obs.Scope.metrics)) );
           ]
          @ detector_block)
      in
      let write path s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write events_out (Monitor.to_jsonl monitor);
      write out (Jsonw.to_string_pretty report ^ "\n");
      Format.printf "monitored %d repairs: %d checks, %d events, %d violations@."
        (Monitor.repairs monitor) (Monitor.checks monitor) (Monitor.num_events monitor)
        (Monitor.num_violations monitor);
      Format.printf "wrote %s and %s@." events_out out;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a seeded deletion attack with the invariant observatory on and export the structured event log plus a per-repair report (deterministic: same seed, byte-identical files).")
    Term.(
      ret
        (const run $ verbose_flag $ shape $ steps $ seed $ cadence $ events_out $ out
       $ detector))

(* ---------- list command ---------- *)

let list_cmd =
  let run () =
    print_endline "healers:";
    List.iter (fun l -> print_endline ("  " ^ l)) (healer_labels ());
    print_endline "strategies: random, hub, min-degree, cutpoint, bottleneck, churn, adaptive-churn";
    print_endline "shapes: star:N path:N cycle:N grid:R:C regular:N:D er:N:P hgraph:N:D pa:N:K";
    print_endline "experiments:";
    List.iter
      (fun e -> Printf.printf "  %-3s %s\n" e.Xheal_experiments.Exp.id e.Xheal_experiments.Exp.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List healers, strategies, shapes and experiments.") Term.(const run $ const ())

let main =
  let doc = "Xheal: localized self-healing using expanders (PODC 2011 reproduction)" in
  Cmd.group (Cmd.info "xheal_cli" ~version:"1.0.0" ~doc)
    [ experiments_cmd; attack_cmd; batch_cmd; trace_cmd; report_cmd; list_cmd ]

let () = exit (Cmd.eval main)
