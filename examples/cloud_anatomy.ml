(* Anatomy of a healed network: drives the Xheal engine directly,
   prints the cloud inventory after each repair (primary vs secondary
   clouds, free vs bridge nodes), and exports a DOT file whose edge
   colors show the paper's black / primary-red / secondary-orange
   classification.

   Run with: dune exec examples/cloud_anatomy.exe *)

module Graph = Xheal_graph.Graph
module Edge = Xheal_graph.Edge
module Dot = Xheal_graph.Dot
module Xheal = Xheal_core.Xheal
module Cloud = Xheal_core.Cloud

let describe eng tag =
  Printf.printf "\n-- %s --\n" tag;
  let g = Xheal.graph eng in
  Printf.printf "network: %d nodes, %d edges; clouds: %d\n" (Graph.num_nodes g)
    (Graph.num_edges g) (Xheal.num_clouds eng);
  List.iter
    (fun c ->
      let members = Cloud.members c in
      let frees = List.filter (Xheal.is_free eng) members in
      Printf.printf "  cloud %d (%s, %s): %d members, %d free  leader=%s\n" (Cloud.id c)
        (Cloud.kind_to_string (Cloud.kind c))
        (match Cloud.structure_kind c with `Clique -> "clique" | `Expander -> "H-graph")
        (List.length members) (List.length frees)
        (match Cloud.leader c with Some l -> string_of_int l | None -> "-"))
    (Xheal.clouds eng)

let edge_attrs eng e =
  let u = Edge.src e and v = Edge.dst e in
  let black = Xheal.is_black_edge eng u v in
  match (black, Xheal.edge_cloud_owners eng u v) with
  | true, [] -> [ ("color", "black") ]
  | _, owners ->
    let secondary =
      List.exists
        (fun id ->
          match Xheal.find_cloud eng id with
          | Some c -> Cloud.kind c = Cloud.Secondary
          | None -> false)
        owners
    in
    let color = if secondary then "orange" else "red" in
    if black then [ ("color", "black:" ^ color) ] else [ ("color", color) ]

let node_attrs eng u =
  if not (Xheal.is_free eng u) then [ ("shape", "doublecircle"); ("label", string_of_int u) ]
  else [ ("label", string_of_int u) ]

let () =
  let rng = Random.State.make [| 31337 |] in
  (* Two hubs sharing a relay node, as in the paper's Figure 3 setting. *)
  let g = Graph.create () in
  List.iter (fun l -> ignore (Graph.add_edge g 0 l)) [ 1; 2; 3; 4; 5 ];
  List.iter (fun l -> ignore (Graph.add_edge g 10 l)) [ 11; 12; 13; 14; 15 ];
  ignore (Graph.add_edge g 20 0);
  ignore (Graph.add_edge g 20 10);
  ignore (Graph.add_edge g 5 11);
  let eng = Xheal.create ~rng g in
  describe eng "initial (all edges black)";
  Xheal.delete eng 0;
  describe eng "after deleting hub 0 (Case 1: primary cloud)";
  Xheal.delete eng 10;
  describe eng "after deleting hub 10 (Case 1: second primary cloud)";
  Xheal.delete eng 20;
  describe eng "after deleting relay 20 (Case 2.1: secondary cloud stitches the primaries)";
  (match Xheal.clouds eng |> List.find_opt (fun c -> Cloud.kind c = Cloud.Secondary) with
  | Some s ->
    let bridge = List.hd (Cloud.members s) in
    Xheal.delete eng bridge;
    describe eng
      (Printf.sprintf "after deleting bridge %d (Case 2.2: bridge replacement)" bridge)
  | None -> print_endline "no secondary cloud formed (unexpected)");
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cloud_anatomy.dot" in
  Dot.write_file path
    ~node_attrs:(node_attrs eng)
    ~edge_attrs:(edge_attrs eng)
    (Xheal.graph eng);
  Printf.printf "\nDOT with cloud colors written to %s\n" path;
  print_endline "(black = adversarial edges, red = primary clouds, orange = secondary clouds,";
  print_endline " doublecircle = bridge nodes carrying secondary-cloud duty)"
