(* Quickstart: build a network, let an adversary attack it, let Xheal
   heal it, and inspect the Theorem-2 guarantees.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Xheal_graph.Graph
module Generators = Xheal_graph.Generators
module Cost = Xheal_core.Cost
module Expansion = Xheal_metrics.Expansion
module Degree = Xheal_metrics.Degree
module Stretch = Xheal_metrics.Stretch
module Driver = Xheal_adversary.Driver
module Strategy = Xheal_adversary.Strategy

let () =
  let rng = Random.State.make [| 2024 |] in

  (* 1. An initial network: a sparse random graph of 60 processors. *)
  let initial = Generators.connected_er ~rng 60 0.08 in
  Format.printf "initial network: %a@." Graph.pp initial;

  (* 2. A healer. The driver keeps the insert-only shadow graph G' that
     the paper states its guarantees against. *)
  let driver = Driver.init (Xheal_baselines.Baselines.xheal ()) ~rng initial in

  (* 3. An omniscient adversary: churn, then a burst of hub attacks. *)
  let atk = Random.State.make [| 7 |] in
  let churn = Strategy.churn ~rng:atk ~first_id:1000 () in
  ignore (Driver.run driver churn ~steps:60);
  let hubs = Strategy.hub_delete ~rng:atk () in
  ignore (Driver.run driver hubs ~steps:15);

  (* 4. What did healing preserve? *)
  let healed = Driver.graph driver and reference = Driver.gprime driver in
  let hm = Expansion.measure healed and rm = Expansion.measure reference in
  Format.printf "after %d events (%d deletions):@." (Driver.steps driver) (Driver.deletions driver);
  Format.printf "  healed   : %a@." Expansion.pp hm;
  Format.printf "  G' (ref) : %a@." Expansion.pp rm;
  Format.printf "  expansion guarantee h(G) >= min(1, h(G')): %b@."
    (Expansion.guarantee_ok ~healed:hm ~reference:rm ());

  let deg = Degree.report ~kappa:4 ~healed ~reference in
  Format.printf "  degree: max deg/deg' = %.2f, additive slack %d (limit %d), bound ok: %b@."
    deg.Degree.max_ratio deg.Degree.max_additive_slack 8 deg.Degree.bound_ok;

  let st = Stretch.report ~healed ~reference () in
  Format.printf "  stretch: max %.2f over %d pairs (log2 n = %.1f)@." st.Stretch.max_stretch
    st.Stretch.pairs_checked
    (log (float_of_int (Graph.num_nodes healed)) /. log 2.0);

  let totals = (Driver.healer driver).Xheal_core.Healer.totals () in
  Format.printf "  repair cost: %.1f msgs/deletion (lower bound A(p)=%.1f), worst %d rounds@."
    (Cost.amortized_messages totals)
    (Cost.amortized_lower_bound totals)
    totals.Cost.max_rounds
