(* The rule framework shared by every family (see [Rules] for the
   assembled catalogue).

   A rule is either [Syntactic] (a Parsetree pass — always runnable)
   or [Typed] (a Tast pass over the typed tree from [Typedload], with
   an optional syntactic fallback for files whose types are
   unavailable). Each rule carries a severity, a one-line [doc] and a
   longer [explain] shown by [xlint --explain RULE]. *)

type ctx = {
  path : string; (* repo-relative path, e.g. "lib/graph/graph.ml" *)
  hot_lines : int list; (* (* xlint: hot *) marker lines, ascending *)
}

type check =
  | Syntactic of (ctx -> Parsetree.structure -> Finding.t list)
  | Typed of {
      run : ctx -> Typedtree.structure -> Finding.t list;
      fallback : (ctx -> Parsetree.structure -> Finding.t list) option;
    }

type t = {
  id : string;
  severity : Finding.severity;
  doc : string;
  explain : string;
  applies : string -> bool;
  check : check;
}

(* [loc] is the flagged expression (start position reported); [span],
   when wider, extends the suppression range to the enclosing
   expression's last line so a trailing same-line pragma works. *)
let finding ~ctx ~id ?span loc message =
  let p = loc.Location.loc_start in
  let e = (Option.value ~default:loc span).Location.loc_end in
  {
    Finding.rule = id;
    file = ctx.path;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    end_line = max p.Lexing.pos_lnum e.Lexing.pos_lnum;
    message;
  }

(* The syntactic pass a rule can run without types: its check when it
   is syntactic, its declared fallback when typed. *)
let syntactic_of t =
  match t.check with Syntactic f -> Some f | Typed { fallback; _ } -> fallback

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let everywhere _ = true
let in_dirs dirs p = List.exists (fun d -> has_prefix ~prefix:d p) dirs

(* ------------------------------------------------------------------ *)
(* Parsetree helpers.                                                 *)

(* Longident of an identifier expression, as a string list with any
   leading [Stdlib.] stripped ([Stdlib.compare] and [compare] are the
   same hazard). *)
let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
    match Longident.flatten txt with
    | "Stdlib" :: (_ :: _ as rest) -> Some rest
    | path -> Some path
    | exception _ -> None)
  | _ -> None

(* Walk every expression of a structure; [f] also receives the stack of
   enclosing expressions, innermost first. *)
let iter_exprs structure f =
  let stack = ref [] in
  let expr self e =
    f ~ancestors:!stack e;
    stack := e :: !stack;
    Ast_iterator.default_iterator.expr self e;
    stack := List.tl !stack
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure

(* Collect findings from a per-expression classifier. *)
let expr_check classify ctx str =
  let acc = ref [] in
  iter_exprs str (fun ~ancestors e ->
      match classify ~ancestors e with
      | Some (span, msg) -> acc := finding ~ctx ~id:"" ?span e.Parsetree.pexp_loc msg :: !acc
      | None -> ());
  List.rev !acc

let expr_rule ~id ~severity ~doc ~explain ~applies classify =
  let check ctx str =
    List.map (fun f -> { f with Finding.rule = id }) (expr_check classify ctx str)
  in
  { id; severity; doc; explain; applies; check = Syntactic check }

(* ------------------------------------------------------------------ *)
(* Typedtree helpers.                                                 *)

(* Path of a typed identifier, [Stdlib.] stripped, as a string list
   ("Stdlib.Hashtbl.fold" -> ["Hashtbl"; "fold"]). *)
let tident_path e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
    let name = Path.name p in
    let name =
      if has_prefix ~prefix:"Stdlib." name then
        String.sub name 7 (String.length name - 7)
      else name
    in
    match String.split_on_char '.' name with [] -> None | path -> Some path)
  | _ -> None

(* Walk every expression of a typed structure with the enclosing
   expression stack, innermost first. *)
let iter_texprs structure f =
  let stack = ref [] in
  let expr self e =
    f ~ancestors:!stack e;
    stack := e :: !stack;
    Tast_iterator.default_iterator.expr self e;
    stack := List.tl !stack
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it structure

let texpr_check classify ctx str =
  let acc = ref [] in
  iter_texprs str (fun ~ancestors e ->
      match classify ~ancestors e with
      | Some (id, span, msg) ->
        acc := finding ~ctx ~id ?span e.Typedtree.exp_loc msg :: !acc
      | None -> ());
  List.rev !acc

(* [loc_inside inner outer]: both locations in the same file, [inner]
   contained in [outer] (character positions). *)
let loc_inside inner outer =
  inner.Location.loc_start.Lexing.pos_cnum >= outer.Location.loc_start.Lexing.pos_cnum
  && inner.Location.loc_end.Lexing.pos_cnum <= outer.Location.loc_end.Lexing.pos_cnum

(* ------------------------------------------------------------------ *)
(* Shared vocabularies.                                               *)

let sort_paths =
  [
    [ "List"; "sort" ];
    [ "List"; "sort_uniq" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

(* Operators whose repeated application is order-insensitive, so a fold
   reducing with one of them is safe even in hash order. *)
let commutative_ops =
  [ "+"; "+."; "*"; "*."; "land"; "lor"; "lxor"; "max"; "min"; "&&"; "||" ]
