(* xlint driver: find sources, parse, (maybe) type, run the rule
   catalogue, filter suppressions, report. Everything is deterministic:
   files are visited in sorted order and findings are sorted by
   (file, line, col, rule). *)

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

(* A file the compiler cannot parse gets a synthetic E0 finding rather
   than aborting the whole run. *)
let parse_error_finding ~path exn =
  let line, col =
    match exn with
    | Syntaxerr.Error e ->
      let p = (Syntaxerr.location_of_error e).Location.loc_start in
      (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
    | _ -> (1, 0)
  in
  {
    Finding.rule = "E0";
    file = path;
    line;
    col;
    end_line = line;
    message = Printf.sprintf "cannot parse: %s" (Printexc.to_string exn);
  }

(* The result of linting one file. [raw] is every finding the rules
   produced (stale-allow detection keys on it); [findings] is what
   survives pragmas and the allowlist; [used] the allow entries that
   did real work. *)
type outcome = {
  raw : Finding.t list;
  findings : Finding.t list;
  used : Allowlist.entry list;
  typed : bool; (* a typed tree backed the typed rules *)
}

(* Lint one file. [as_path] is the repo-relative path used for rule
   applicability and reporting; it defaults to [path] and exists so
   tests can lint a fixture as if it lived under lib/. The typed tree
   is looked up by the {e real} [path] (cmt side-cars live next to the
   source), independent of [as_path]. *)
let lint_file ?(rules = Rules.all) ?(allow = Allowlist.empty) ?as_path path =
  let rel = Option.value ~default:path as_path in
  match parse_implementation path with
  | exception exn ->
    let f = parse_error_finding ~path:rel exn in
    { raw = [ f ]; findings = [ f ]; used = []; typed = false }
  | structure ->
    let pragmas = Pragma.scan_file path in
    let ctx = { Rule.path = rel; hot_lines = Pragma.hot_lines pragmas } in
    let needs_types =
      List.exists
        (fun r ->
          r.Rule.applies rel
          && match r.Rule.check with Rule.Typed _ -> true | Rule.Syntactic _ -> false)
        rules
    in
    let tstr = if needs_types then Typedload.for_file ~path structure else None in
    let raw =
      rules
      |> List.concat_map (fun r ->
             if not (r.Rule.applies rel) then []
             else
               match r.Rule.check with
               | Rule.Syntactic f -> f ctx structure
               | Rule.Typed { run; fallback } -> (
                 match tstr with
                 | Some t -> run ctx t
                 | None -> (
                   match fallback with Some f -> f ctx structure | None -> [])))
      |> List.sort Finding.compare
    in
    let unsuppressed =
      List.filter
        (fun f ->
          not
            (Pragma.disabled pragmas ~line:f.Finding.line ~end_line:f.Finding.end_line
               ~rule:f.Finding.rule))
        raw
    in
    let used = ref [] in
    let findings =
      List.filter
        (fun f ->
          match
            Allowlist.matching allow ~rule:f.Finding.rule ~path:rel ~line:f.Finding.line
          with
          | Some e ->
            if not (List.memq e !used) then used := e :: !used;
            false
          | None -> true)
        unsuppressed
    in
    { raw; findings; used = !used; typed = tstr <> None }

let is_ml path = Filename.check_suffix path ".ml"

let rec collect_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name.[0] <> '_')
    |> List.concat_map (fun name -> collect_ml_files (Filename.concat path name))
  else if is_ml path then [ path ]
  else []

(* ------------------------------------------------------------------ *)
(* Whole-tree run with stale-allow detection.                         *)

type run_result = {
  all_findings : Finding.t list; (* unsuppressed + synthetic A1, sorted *)
  files : int;
  typed_files : int;
}

(* An allow entry that suppressed nothing across the whole run is
   itself a finding: the allowlist may only shrink in step with the
   code (see [Allowlist]). [allow_path] names the file A1 findings
   point into. *)
let stale_findings ~allow_path ~used allow =
  allow
  |> List.filter (fun (e : Allowlist.entry) ->
         e.Allowlist.src_line > 0 && not (List.memq e used))
  |> List.map (fun e ->
         {
           Finding.rule = "A1";
           file = allow_path;
           line = e.Allowlist.src_line;
           col = 0;
           end_line = e.Allowlist.src_line;
           message =
             Format.asprintf
               "stale allow entry \"%a\": it suppresses nothing in this run; delete it"
               Allowlist.pp_entry e;
         })

let run ?rules ?(allow = Allowlist.empty) ?(allow_path = "xlint.allow") dirs =
  let files = dirs |> List.concat_map collect_ml_files in
  let outcomes = List.map (fun path -> lint_file ?rules ~allow path) files in
  let used = List.concat_map (fun o -> o.used) outcomes in
  let findings =
    List.concat_map (fun o -> o.findings) outcomes
    @ stale_findings ~allow_path ~used allow
    |> List.sort Finding.compare
  in
  {
    all_findings = findings;
    files = List.length files;
    typed_files = List.length (List.filter (fun o -> o.typed) outcomes);
  }

let report ppf result =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) result.all_findings;
  if result.all_findings <> [] then begin
    let count sev =
      List.length
        (List.filter
           (fun f -> Rules.severity_of f.Finding.rule = sev)
           result.all_findings)
    in
    Format.fprintf ppf "xlint: %d finding(s) (%d error(s), %d warning(s)) in %d file(s), %d typed@."
      (List.length result.all_findings)
      (count Finding.Error) (count Finding.Warning) result.files result.typed_files
  end

(* ------------------------------------------------------------------ *)
(* Fixture self-test: the corpus encodes its expectations in file     *)
(* names.  [<rule>_bad*.ml] must produce at least one <RULE> finding  *)
(* and [<rule>_good*.ml] must produce none; every fixture is linted   *)
(* as if it lived at lib/distributed/<name> so all rules are in       *)
(* scope.  Fixtures named [*_typed_*] additionally require the typed  *)
(* tree (direct typing must have succeeded), so a regression in       *)
(* [Typedload] cannot silently demote them to the syntactic fallback. *)

let fixture_rule name =
  match String.index_opt name '_' with
  | Some i -> Some (String.uppercase_ascii (String.sub name 0 i))
  | None -> None

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let self_test ppf dir =
  let failures = ref 0 in
  let check path =
    let name = Filename.basename path in
    let o = lint_file ~as_path:("lib/distributed/" ^ name) path in
    let fail fmt =
      incr failures;
      Format.fprintf ppf ("FAIL %s: " ^^ fmt ^^ "@.") name
    in
    if contains ~sub:"_typed_" name && not o.typed then
      fail "typed fixture, but no typed tree was available";
    match fixture_rule name with
    | Some rule when contains ~sub:"_bad" name ->
      if not (List.exists (fun f -> f.Finding.rule = rule) o.findings) then
        fail "expected a %s finding, got %d finding(s)" rule (List.length o.findings)
    | Some _ when contains ~sub:"_good" name ->
      if o.findings <> [] then begin
        fail "expected no findings:";
        List.iter (fun f -> Format.fprintf ppf "  %a@." Finding.pp f) o.findings
      end
    | _ -> fail "fixture name must look like d1_bad*.ml or d1_good*.ml"
  in
  let files = collect_ml_files dir in
  if files = [] then begin
    Format.fprintf ppf "xlint --fixtures: no .ml files under %s@." dir;
    incr failures
  end;
  List.iter check files;
  if !failures = 0 then
    Format.fprintf ppf "xlint: fixture self-test ok (%d fixtures)@." (List.length files);
  !failures = 0
