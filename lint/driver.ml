(* xlint driver: find sources, parse, run rules, filter suppressions,
   report.  Everything is deterministic: files are visited in sorted
   order and findings are sorted by (file, line, col, rule). *)

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

(* A file the compiler cannot parse gets a synthetic E0 finding rather
   than aborting the whole run. *)
let parse_error_finding ~path exn =
  let line, col =
    match exn with
    | Syntaxerr.Error e ->
      let p = (Syntaxerr.location_of_error e).Location.loc_start in
      (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
    | _ -> (1, 0)
  in
  {
    Rules.rule = "E0";
    file = path;
    line;
    col;
    message = Printf.sprintf "cannot parse: %s" (Printexc.to_string exn);
  }

(* Lint one file. [as_path] is the repo-relative path used for rule
   applicability and reporting; it defaults to [path] and exists so
   tests can lint a fixture as if it lived under lib/. *)
let lint_file ?(rules = Rules.all) ?(allow = Allowlist.empty) ?as_path path =
  let rel = Option.value ~default:path as_path in
  match parse_implementation path with
  | exception exn -> [ parse_error_finding ~path:rel exn ]
  | structure ->
    let pragmas = Pragma.scan_file path in
    let ctx = { Rules.path = rel } in
    rules
    |> List.concat_map (fun r -> if r.Rules.applies rel then r.Rules.check ctx structure else [])
    |> List.filter (fun f ->
           not (Pragma.disabled pragmas ~line:f.Rules.line ~rule:f.Rules.rule))
    |> List.filter (fun f ->
           not (Allowlist.allows allow ~rule:f.Rules.rule ~path:rel ~line:f.Rules.line))
    |> List.sort Rules.compare_findings

let is_ml path = Filename.check_suffix path ".ml"

let rec collect_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name.[0] <> '_')
    |> List.concat_map (fun name -> collect_ml_files (Filename.concat path name))
  else if is_ml path then [ path ]
  else []

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.Rules.file f.Rules.line f.Rules.col
    f.Rules.rule f.Rules.message

(* Lint every .ml under [dirs]; returns all findings, sorted. *)
let run ?rules ?allow dirs =
  dirs
  |> List.concat_map collect_ml_files
  |> List.concat_map (fun path -> lint_file ?rules ?allow path)
  |> List.sort Rules.compare_findings

let report ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) findings;
  if findings <> [] then
    Format.fprintf ppf "xlint: %d finding(s)@." (List.length findings)

(* ------------------------------------------------------------------ *)
(* Fixture self-test: the corpus encodes its expectations in file     *)
(* names.  [dN_bad*.ml] must produce at least one DN finding and      *)
(* [dN_good*.ml] must produce none; every fixture is linted as if it  *)
(* lived at lib/distributed/<name> so all rules are in scope.         *)

let fixture_rule name =
  match String.index_opt name '_' with
  | Some i -> Some (String.uppercase_ascii (String.sub name 0 i))
  | None -> None

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let self_test ppf dir =
  let failures = ref 0 in
  let check path =
    let name = Filename.basename path in
    let findings = lint_file ~as_path:("lib/distributed/" ^ name) path in
    let fail fmt =
      incr failures;
      Format.fprintf ppf ("FAIL %s: " ^^ fmt ^^ "@.") name
    in
    match fixture_rule name with
    | Some rule when contains ~sub:"_bad" name ->
      if not (List.exists (fun f -> f.Rules.rule = rule) findings) then
        fail "expected a %s finding, got %d finding(s)" rule (List.length findings)
    | Some _ when contains ~sub:"_good" name ->
      if findings <> [] then begin
        fail "expected no findings:";
        List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) findings
      end
    | _ -> fail "fixture name must look like d1_bad*.ml or d1_good*.ml"
  in
  let files = collect_ml_files dir in
  if files = [] then begin
    Format.fprintf ppf "xlint --fixtures: no .ml files under %s@." dir;
    incr failures
  end;
  List.iter check files;
  if !failures = 0 then
    Format.fprintf ppf "xlint: fixture self-test ok (%d fixtures)@." (List.length files);
  !failures = 0
