(* A single diagnostic. [line]/[col] locate the flagged expression's
   start (what the reporter prints); [end_line] is the last line of the
   flagged expression, so a suppression pragma anywhere on the
   expression's own lines — including a trailing same-line comment after
   a multi-line application — is honoured. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  end_line : int;
  message : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message
