(* H-rules: allocation hygiene on hot paths.

   Modules (or single top-level bindings) annotated [(* xlint: hot *)]
   opt into per-iteration allocation checks: the Netsim delivery loop,
   [Traversal]'s BFS cores, [Event_queue] and the [Graph_csr] pack
   readers must stay flat so the PR-7 de-allocation work cannot
   silently regress (and the planned Msg arena / batched event queue
   keeps a tripwire).

   "Per iteration" means inside the body of a [for]/[while] loop, or
   inside a closure passed directly to a known iteration combinator
   (List.iter, Array.fold_left, Hashtbl.iter, ...), transitively. The
   rules are tripwires, not escape analyses: a flagged site is an
   allocation the compiler will perform on every iteration; hoist it,
   restructure, or annotate the line with a justification
   ([(* xlint: disable=H1 *)]).

   H1  closure allocation in a loop body (hoist the closure, or use a
       recursive helper defined outside the loop)
   H2  tuple / constructor-with-payload / record / array-literal /
       [ref] / [lazy] allocation in a loop body
   H3  list-building combinator (List.map family, [@], Array.map,
       Array.make, ...) in a loop body
   H4  (typed) partial application in a loop body — each one allocates
       a closure capturing the supplied prefix *)

open Rule

(* ------------------------------------------------------------------ *)
(* Hot regions.                                                       *)

(* Pair each (* xlint: hot *) marker with a top-level item: the item
   whose span contains the marker line, else the first item starting
   below it. A marker above the first item marks the whole file. *)
let regions_of ~item_spans hot_lines =
  match hot_lines with
  | [] -> []
  | _ ->
    let first_start =
      List.fold_left (fun acc (s, _) -> min acc s) max_int item_spans
    in
    List.filter_map
      (fun m ->
        if m < first_start then Some (1, max_int)
        else
          match List.find_opt (fun (s, e) -> s <= m && m <= e) item_spans with
          | Some r -> Some r
          | None ->
            List.fold_left
              (fun acc (s, e) ->
                if s > m then
                  match acc with
                  | Some (s', _) when s' <= s -> acc
                  | _ -> Some (s, e)
                else acc)
              None item_spans)
      hot_lines

let in_regions regions line = List.exists (fun (s, e) -> s <= line && line <= e) regions

let pstr_item_spans str =
  List.map
    (fun it ->
      ( it.Parsetree.pstr_loc.Location.loc_start.Lexing.pos_lnum,
        it.Parsetree.pstr_loc.Location.loc_end.Lexing.pos_lnum ))
    str

let tstr_item_spans str =
  List.map
    (fun it ->
      ( it.Typedtree.str_loc.Location.loc_start.Lexing.pos_lnum,
        it.Typedtree.str_loc.Location.loc_end.Lexing.pos_lnum ))
    str.Typedtree.str_items

(* ------------------------------------------------------------------ *)
(* Iteration combinators whose functional argument runs per element.  *)

let iterator_paths =
  [
    [ "List"; "iter" ]; [ "List"; "iteri" ]; [ "List"; "iter2" ];
    [ "List"; "map" ]; [ "List"; "mapi" ]; [ "List"; "concat_map" ];
    [ "List"; "filter" ]; [ "List"; "filter_map" ]; [ "List"; "partition" ];
    [ "List"; "fold_left" ]; [ "List"; "fold_right" ];
    [ "List"; "for_all" ]; [ "List"; "exists" ]; [ "List"; "init" ];
    [ "Array"; "iter" ]; [ "Array"; "iteri" ]; [ "Array"; "map" ];
    [ "Array"; "mapi" ]; [ "Array"; "fold_left" ]; [ "Array"; "fold_right" ];
    [ "Array"; "init" ];
    [ "Hashtbl"; "iter" ]; [ "Hashtbl"; "fold" ];
    [ "Seq"; "iter" ]; [ "Seq"; "map" ]; [ "Seq"; "fold_left" ];
  ]

(* List-building combinators that allocate a fresh spine per call. *)
let alloc_combinators =
  [
    [ "List"; "map" ]; [ "List"; "mapi" ]; [ "List"; "map2" ];
    [ "List"; "append" ]; [ "List"; "concat" ]; [ "List"; "concat_map" ];
    [ "List"; "filter" ]; [ "List"; "filter_map" ]; [ "List"; "partition" ];
    [ "List"; "init" ]; [ "List"; "rev" ]; [ "List"; "rev_append" ];
    [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ]; [ "List"; "of_seq" ]; [ "List"; "split" ];
    [ "List"; "combine" ]; [ "@" ];
    [ "Array"; "map" ]; [ "Array"; "mapi" ]; [ "Array"; "append" ];
    [ "Array"; "concat" ]; [ "Array"; "make" ]; [ "Array"; "init" ];
    [ "Array"; "copy" ]; [ "Array"; "sub" ]; [ "Array"; "to_list" ];
    [ "Array"; "of_list" ];
  ]

(* ------------------------------------------------------------------ *)
(* Per-iteration depth on the Parsetree.                              *)

let is_iterator_apply e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some path -> List.mem path iterator_paths
    | None -> false)
  | _ -> false

let is_fun e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

(* Number of per-iteration boundaries crossed between the outermost
   ancestor and [e]: a while/for body, or the body of a closure passed
   directly to an iteration combinator. [chain] is outermost-first and
   ends with [e]. *)
let loop_depth chain =
  let arr = Array.of_list chain in
  let n = Array.length arr in
  let depth = ref 0 in
  for i = 0 to n - 2 do
    let parent = arr.(i) and child = arr.(i + 1) in
    (match parent.Parsetree.pexp_desc with
    | Parsetree.Pexp_while (_, body) when body == child -> incr depth
    | Parsetree.Pexp_for (_, _, _, _, body) when body == child -> incr depth
    | Parsetree.Pexp_fun (_, _, _, body) when body == child && i > 0 ->
      (* The closure's body runs per element when the closure is a
         direct argument of an iteration combinator. *)
      let grand = arr.(i - 1) in
      (match grand.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply (_, args)
        when is_iterator_apply grand && List.exists (fun (_, a) -> a == parent) args ->
        incr depth
      | _ -> ())
    | Parsetree.Pexp_function cases
      when List.exists (fun c -> c.Parsetree.pc_rhs == child) cases && i > 0 -> (
      let grand = arr.(i - 1) in
      match grand.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply (_, args)
        when is_iterator_apply grand && List.exists (fun (_, a) -> a == parent) args ->
        incr depth
      | _ -> ())
    | _ -> ())
  done;
  !depth

let depth_of ~ancestors e = loop_depth (List.rev (e :: ancestors))

(* ------------------------------------------------------------------ *)
(* The three syntactic H-rules share one walk.                        *)

let h_applies = everywhere

let hot_classifier flag_of ctx str =
  let regions = regions_of ~item_spans:(pstr_item_spans str) ctx.hot_lines in
  if regions = [] then []
  else
    let acc = ref [] in
    iter_exprs str (fun ~ancestors e ->
        let line = e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum in
        if in_regions regions line then
          match flag_of ~ancestors e with
          | Some (id, msg) -> acc := finding ~ctx ~id e.Parsetree.pexp_loc msg :: !acc
          | None -> ());
    List.rev !acc

let h1_flag ~ancestors e =
  if is_fun e && depth_of ~ancestors e >= 1 then
    Some
      ( "H1",
        "closure allocated on every iteration of a hot loop; hoist it before the \
         loop or use a recursive helper" )
  else None

let h2_flag ~ancestors e =
  let hit what =
    Some
      ( "H2",
        Printf.sprintf
          "%s allocated on every iteration of a hot loop; hoist it, reuse scratch \
           state, or restructure" what )
  in
  (* A multi-argument constructor parses as the constructor applied to
     a sugar tuple ([a :: b] is [(::) (a, b)]); that tuple is part of
     the construct allocation, not a second one. *)
  let construct_arg_tuple () =
    match (e.Parsetree.pexp_desc, ancestors) with
    | Parsetree.Pexp_tuple _, { Parsetree.pexp_desc = Parsetree.Pexp_construct (_, Some arg); _ } :: _ ->
      arg == e
    | _ -> false
  in
  if depth_of ~ancestors e < 1 then None
  else
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_tuple _ when construct_arg_tuple () -> None
    | Parsetree.Pexp_tuple _ -> hit "tuple"
    | Parsetree.Pexp_record _ -> hit "record"
    | Parsetree.Pexp_array _ -> hit "array literal"
    | Parsetree.Pexp_lazy _ -> hit "lazy block"
    | Parsetree.Pexp_construct ({ txt; _ }, Some _) -> (
      match Longident.flatten txt with
      | l -> (
        match List.rev l with
        | last :: _ -> hit (Printf.sprintf "constructor %s payload" last)
        | [] -> None)
      | exception _ -> hit "constructor payload")
    | Parsetree.Pexp_apply (fn, _) when ident_path fn = Some [ "ref" ] -> hit "ref cell"
    | _ -> None

let h3_flag ~ancestors e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) when depth_of ~ancestors e >= 1 -> (
    match ident_path fn with
    | Some path when List.mem path alloc_combinators ->
      Some
        ( "H3",
          Printf.sprintf
            "%s builds a fresh structure on every iteration of a hot loop; hoist it \
             or iterate in place"
            (String.concat "." path) )
    | _ -> None)
  | _ -> None

let h_rule ~id ~doc ~explain flag =
  {
    id;
    severity = Finding.Warning;
    doc;
    explain;
    applies = h_applies;
    check = Syntactic (hot_classifier flag);
  }

let h1 =
  h_rule ~id:"H1" ~doc:"closure allocation per iteration in a hot loop"
    ~explain:
      "Inside a (* xlint: hot *) region, a fun/function expression inside a \
       for/while body (or inside a closure an iteration combinator runs per \
       element) is allocated on every iteration. Hoist the closure into a \
       let-binding before the loop — its captures are loop-invariant or it \
       could not be hoisted, in which case pass the varying part as an \
       argument to a recursive helper instead. The Netsim delivery loop's \
       per-round delivery and node-step closures were exactly this shape \
       before being hoisted."
    h1_flag

let h2 =
  h_rule ~id:"H2" ~doc:"tuple/option/record/ref allocation per iteration in a hot loop"
    ~explain:
      "Inside a (* xlint: hot *) region, building a tuple, a constructor with a \
       payload (Some, ::, a Msg), a record, an array literal, a ref or a lazy \
       block inside a loop allocates on every iteration and churns the minor \
       heap at million-event scale. Reuse scratch state (pre-sized arrays, \
       mutable cursors) as Traversal.bfs_core does, or move the allocation out \
       of the loop. Boxed floats hide in the same shapes: a float stored in a \
       tuple/option/polymorphic container is boxed at that point."
    h2_flag

let h3 =
  h_rule ~id:"H3" ~doc:"List.map-family call per iteration in a hot loop"
    ~explain:
      "Inside a (* xlint: hot *) region, the list/array building combinators \
       (List.map, filter, append, @, Array.make, ...) allocate a fresh spine \
       per call; calling one inside a loop multiplies that by the iteration \
       count. Iterate in place (List.iter, explicit indices) or hoist the \
       construction out of the loop."
    h3_flag

(* ------------------------------------------------------------------ *)
(* H4: partial application in a hot loop (typed only — needs the      *)
(* result type to tell a partial application from a full one).        *)

let t_is_iterator_apply e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (fn, _) -> (
    match tident_path fn with
    | Some path -> List.mem path iterator_paths
    | None -> false)
  | _ -> false

let t_loop_depth chain =
  let arr = Array.of_list chain in
  let n = Array.length arr in
  let depth = ref 0 in
  for i = 0 to n - 2 do
    let parent = arr.(i) and child = arr.(i + 1) in
    (match parent.Typedtree.exp_desc with
    | Typedtree.Texp_while (_, body) when body == child -> incr depth
    | Typedtree.Texp_for (_, _, _, _, _, body) when body == child -> incr depth
    | Typedtree.Texp_function { cases; _ }
      when List.exists (fun c -> c.Typedtree.c_rhs == child) cases && i > 0 -> (
      let grand = arr.(i - 1) in
      match grand.Typedtree.exp_desc with
      | Typedtree.Texp_apply (_, args)
        when t_is_iterator_apply grand
             && List.exists (fun (_, a) -> match a with Some a -> a == parent | None -> false) args ->
        incr depth
      | _ -> ())
    | _ -> ())
  done;
  !depth

let t_depth_of ~ancestors e = t_loop_depth (List.rev (e :: ancestors))

let is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tpoly (t, _) -> (
    match Types.get_desc t with Types.Tarrow _ -> true | _ -> false)
  | _ -> false

let h4_typed ctx str =
  let regions = regions_of ~item_spans:(tstr_item_spans str) ctx.hot_lines in
  if regions = [] then []
  else
    let acc = ref [] in
    iter_texprs str (fun ~ancestors e ->
        let line = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum in
        if in_regions regions line then
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_apply _ when is_arrow e.Typedtree.exp_type ->
            (* Skip applies that are immediately applied further. *)
            let applied_further =
              match ancestors with
              | outer :: _ -> (
                match outer.Typedtree.exp_desc with
                | Typedtree.Texp_apply (fn, _) -> fn == e
                | _ -> false)
              | [] -> false
            in
            if (not applied_further) && t_depth_of ~ancestors e >= 1 then
              acc :=
                finding ~ctx ~id:"H4" e.Typedtree.exp_loc
                  "partial application in a hot loop allocates a closure capturing \
                   the supplied prefix on every iteration; apply fully or hoist"
                :: !acc
          | _ -> ());
    List.rev !acc

let h4 =
  {
    id = "H4";
    severity = Finding.Warning;
    doc = "partial application per iteration in a hot loop (typed)";
    explain =
      "Inside a (* xlint: hot *) region, an application whose result is itself \
       a function (a partial application) allocates a closure capturing the \
       supplied arguments — on every iteration when it sits in a loop. Apply \
       the function fully, or hoist the partial application before the loop. \
       This rule needs the typed tree (the result type tells a partial \
       application from a full one) and has no syntactic fallback.";
    applies = h_applies;
    check = Typed { run = h4_typed; fallback = None };
  }
