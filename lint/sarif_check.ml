(* Validates an xlint.sarif artifact against the SARIF 2.1.0 subset
   [Sarif] emits: a parseable document with the right version, one run,
   a tool.driver carrying a complete rule table, and results whose
   ruleIds resolve into that table with well-formed regions. Used by
   the @lint alias (bench_check idiom); exits non-zero with a
   diagnostic on the first violation. *)

module J = Xheal_obs.Jsonw

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let get name json =
  match J.member name json with Some v -> v | None -> fail "missing field %S" name

let get_string name json =
  match get name json with J.String s -> s | _ -> fail "field %S is not a string" name

let get_int name json =
  match get name json with J.Int i -> i | _ -> fail "field %S is not an integer" name

let get_list name json =
  match get name json with J.List l -> l | _ -> fail "field %S is not a list" name

let levels = [ "error"; "warning"; "note" ]

let check_level where json =
  let l = get_string "level" json in
  if not (List.mem l levels) then fail "%s: bad level %S" where l

let check_rule json =
  let id = get_string "id" json in
  if id = "" then fail "rule with empty id";
  let short = get "shortDescription" json in
  if get_string "text" short = "" then fail "rule %s: empty shortDescription" id;
  let full = get "fullDescription" json in
  if get_string "text" full = "" then fail "rule %s: empty fullDescription" id;
  let conf = get "defaultConfiguration" json in
  let l = get_string "level" conf in
  if not (List.mem l levels) then fail "rule %s: bad defaultConfiguration.level %S" id l;
  id

let check_result ~rule_ids json =
  let rule = get_string "ruleId" json in
  if not (List.mem rule rule_ids) then
    fail "result ruleId %S not in the driver rule table" rule;
  check_level (Printf.sprintf "result (%s)" rule) json;
  if get_string "text" (get "message" json) = "" then
    fail "result (%s): empty message" rule;
  match get_list "locations" json with
  | [ loc ] ->
    let phys = get "physicalLocation" loc in
    let uri = get_string "uri" (get "artifactLocation" phys) in
    if uri = "" then fail "result (%s): empty artifact uri" rule;
    let region = get "region" phys in
    let start_line = get_int "startLine" region in
    let start_col = get_int "startColumn" region in
    let end_line = get_int "endLine" region in
    if start_line < 1 then fail "result (%s): startLine %d < 1" rule start_line;
    if start_col < 1 then fail "result (%s): startColumn %d < 1" rule start_col;
    if end_line < start_line then
      fail "result (%s): endLine %d before startLine %d" rule end_line start_line
  | locs -> fail "result (%s): expected exactly one location, got %d" rule (List.length locs)

let check_doc json =
  if get_string "version" json <> "2.1.0" then
    fail "version is not 2.1.0";
  if get_string "$schema" json = "" then fail "empty $schema";
  match get_list "runs" json with
  | [ run ] ->
    let driver = get "driver" (get "tool" run) in
    if get_string "name" driver <> "xlint" then fail "tool.driver.name is not xlint";
    let rule_ids = List.map check_rule (get_list "rules" driver) in
    if rule_ids = [] then fail "empty rule table";
    let results = get_list "results" run in
    List.iter (check_result ~rule_ids) results;
    List.length results
  | runs -> fail "expected exactly one run, got %d" (List.length runs)

let check_file path =
  match J.of_string (read_file path) with
  | Error msg -> fail "unparseable JSON: %s" msg
  | Ok json -> check_doc json

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: sarif_check FILE.sarif...";
    exit 2
  end;
  let bad = ref false in
  for i = 1 to Array.length Sys.argv - 1 do
    let path = Sys.argv.(i) in
    match check_file path with
    | n -> Printf.printf "sarif_check: %s ok (%d result(s))\n" path n
    | exception Bad msg ->
      bad := true;
      Printf.eprintf "sarif_check: %s: %s\n" path msg
    | exception Sys_error msg ->
      bad := true;
      Printf.eprintf "sarif_check: %s\n" msg
  done;
  exit (if !bad then 1 else 0)
