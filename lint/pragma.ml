(* In-source pragmas.

   A finding whose flagged expression spans lines [S..E] is suppressed
   when any of lines [S-1 .. E] carries a pragma disabling its rule —
   the preceding line, the expression's own first line, or (for
   multi-line expressions) a trailing comment on the line the
   expression ends:

     (* xlint: disable=D2 *)
     (* xlint: disable=D1,D4 *)
     (* xlint: order-independent *)        (alias for disable=D2)

   A hot-path marker hands a region to the H-rule family:

     (* xlint: hot *)

   at the top of the file (before the first definition) marks the whole
   module hot; on the line preceding a top-level binding it marks just
   that binding (see [Rules_h]).

   Scanning is textual (comments never reach the Parsetree), one pass
   over the file, no regex dependency. Every "xlint:" occurrence on a
   line is honoured, so two pragmas may share a line. *)

type t = {
  disables : (int, string list) Hashtbl.t; (* line (1-based) -> rule ids *)
  mutable hot_lines : int list; (* lines bearing a hot marker, ascending *)
}

let empty () = { disables = Hashtbl.create 8; hot_lines = [] }

let find_sub ~sub ~from s =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go from

let is_token_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = ',' || c = '=' || c = '-'

(* The directive token following "xlint:", e.g. "disable=D1,D2". *)
let directive_after line i =
  let n = String.length line in
  let rec skip_ws j = if j < n && (line.[j] = ' ' || line.[j] = '\t') then skip_ws (j + 1) else j in
  let start = skip_ws i in
  let rec stop j = if j < n && is_token_char line.[j] then stop (j + 1) else j in
  let fin = stop start in
  if fin > start then Some (String.sub line start (fin - start)) else None

let rules_of_directive d =
  if d = "order-independent" then [ "D2" ]
  else
    match String.index_opt d '=' with
    | Some i when String.sub d 0 i = "disable" ->
      String.split_on_char ',' (String.sub d (i + 1) (String.length d - i - 1))
      |> List.filter (fun s -> s <> "")
    | _ -> []

let scan_line t ~line_no line =
  let rec at from =
    match find_sub ~sub:"xlint:" ~from line with
    | None -> ()
    | Some i ->
      let next = i + String.length "xlint:" in
      (match directive_after line next with
      | None -> ()
      | Some d ->
        if d = "hot" then t.hot_lines <- line_no :: t.hot_lines
        else
          let rules = rules_of_directive d in
          if rules <> [] then begin
            let prev = Option.value ~default:[] (Hashtbl.find_opt t.disables line_no) in
            Hashtbl.replace t.disables line_no (rules @ prev)
          end);
      at next
  in
  at 0

let scan_file path =
  let t = empty () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           scan_line t ~line_no:!line_no line
         done
       with End_of_file -> ());
      t.hot_lines <- List.rev t.hot_lines;
      t)

let hot_lines t = t.hot_lines

let disabled t ~line ~end_line ~rule =
  let at l = match Hashtbl.find_opt t.disables l with Some rs -> List.mem rule rs | None -> false in
  let last = max line end_line in
  let rec any l = l <= last && (at l || any (l + 1)) in
  any (line - 1)
