(* In-source suppression pragmas.

   A finding on line L is suppressed when line L or line L-1 carries a
   pragma disabling its rule:

     (* xlint: disable=D2 *)
     (* xlint: disable=D1,D4 *)
     (* xlint: order-independent *)        (alias for disable=D2)

   Scanning is textual (comments never reach the Parsetree), one pass
   over the file, no regex dependency. *)

type t = (int, string list) Hashtbl.t (* line (1-based) -> disabled rule ids *)

let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let is_token_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = ',' || c = '=' || c = '-'

(* The directive token following "xlint:", e.g. "disable=D1,D2". *)
let directive_after line i =
  let n = String.length line in
  let rec skip_ws j = if j < n && (line.[j] = ' ' || line.[j] = '\t') then skip_ws (j + 1) else j in
  let start = skip_ws i in
  let rec stop j = if j < n && is_token_char line.[j] then stop (j + 1) else j in
  let fin = stop start in
  if fin > start then Some (String.sub line start (fin - start)) else None

let rules_of_directive d =
  if d = "order-independent" then [ "D2" ]
  else
    match String.index_opt d '=' with
    | Some i when String.sub d 0 i = "disable" ->
      String.split_on_char ',' (String.sub d (i + 1) (String.length d - i - 1))
      |> List.filter (fun s -> s <> "")
    | _ -> []

let scan_line t ~line_no line =
  match find_sub ~sub:"xlint:" line with
  | None -> ()
  | Some i -> (
    match directive_after line (i + String.length "xlint:") with
    | None -> ()
    | Some d ->
      let rules = rules_of_directive d in
      if rules <> [] then
        let prev = Option.value ~default:[] (Hashtbl.find_opt t line_no) in
        Hashtbl.replace t line_no (rules @ prev))

let scan_file path =
  let t = Hashtbl.create 8 in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           scan_line t ~line_no:!line_no line
         done
       with End_of_file -> ());
      t)

let disabled t ~line ~rule =
  let at l = match Hashtbl.find_opt t l with Some rs -> List.mem rule rs | None -> false in
  at line || at (line - 1)
