(* Determinism rules, syntactic variants (Parsetree, no typing).

   These are the PR-3 originals: every correctness claim in this repo —
   QCheck conformance of the event engine against
   [Netsim.run_reference], seeded-replay determinism, the experiment
   tables — assumes runs are bit-reproducible under a seed, and these
   rules mechanise the discipline. D2/D4/D5 have typed upgrades in
   [Rules_typed] that replace the name-matching approximations below
   whenever a typed tree is available; the syntactic forms remain as
   documented fallbacks (and as D1/D3, which need no types). *)

open Rule

(* ------------------------------------------------------------------ *)
(* D1: stateful global randomness.                                    *)
(*                                                                    *)
(* Any [Random.f] draws from (or reseeds) the process-global PRNG,    *)
(* which makes the draw order depend on unrelated code paths.  Only   *)
(* the [Random.State] API, threaded explicitly, is replayable.        *)

let d1 =
  expr_rule ~id:"D1" ~severity:Finding.Error
    ~doc:"global Random state (use an explicit Random.State.t)"
    ~explain:
      "Random.int, Random.float, Random.self_init and friends draw from the \
       process-global PRNG. The draw order then depends on every other code \
       path that also touches it, so a run cannot be replayed from its seed. \
       Thread an explicit Random.State.t instead (created once per run from \
       the seed), as every engine and protocol in this repo does."
    ~applies:everywhere
    (fun ~ancestors:_ e ->
      match ident_path e with
      | Some ("Random" :: rest) when rest <> [] -> (
        match rest with
        | "State" :: _ -> None
        | f :: _ ->
          Some
            ( None,
              Printf.sprintf
                "Random.%s uses the global PRNG; thread an explicit Random.State.t instead"
                f )
        | [] -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D2: hash-order escape.                                             *)

let rec fun_body e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> fun_body body
  | _ -> e

let is_commutative_reduction fn_arg =
  match (fun_body fn_arg).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (op, _) -> (
    match ident_path op with
    | Some path -> (
      match List.rev path with
      | last :: _ -> List.mem last commutative_ops
      | [] -> false)
    | None -> false)
  | _ -> false

let is_sort_apply e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some path -> List.mem path sort_paths
    | None -> false)
  | _ -> false

let d2_explain =
  "Hashtbl bucket order is an accident of insertion history and hashing, so \
   any value that escapes a Hashtbl.iter/Hashtbl.fold unsorted desynchronises \
   seeded replays (this caught real bugs in adversary/strategy.ml, \
   graph/generators.ml, bfs_echo.ml and xheal.ml). Canonicalise the escaping \
   result with List.sort, reduce with a commutative operator (+, max, ...), \
   or annotate the site (* xlint: order-independent *). With a typed tree the \
   rule checks that the sort actually consumes the fold's result; the \
   syntactic fallback accepts any lexically enclosing sort."

(* The classifier is shared: the typed variant in [Rules_typed] redoes
   the sort exemption precisely; this syntactic one exempts any
   enclosing sort application (documented approximation: the sort might
   consume a different value). *)
let d2_classify ~ancestors e =
  match ident_path e with
  | Some [ "Hashtbl"; ("iter" | "fold") ] ->
    let sorted_above = List.exists is_sort_apply ancestors in
    let commutative =
      match ancestors with
      | outer :: _ -> (
        match outer.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (fn, (_, first) :: _) when fn == e ->
          is_commutative_reduction first
        | _ -> false)
      | [] -> false
    in
    if sorted_above || commutative then None
    else
      let span =
        match ancestors with
        | outer :: _ when (match outer.Parsetree.pexp_desc with
                          | Parsetree.Pexp_apply (fn, _) -> fn == e
                          | _ -> false) ->
          Some outer.Parsetree.pexp_loc
        | _ -> None
      in
      Some
        ( span,
          "Hashtbl iteration order is unspecified; canonicalise the escaping \
           result (List.sort) or annotate the site (* xlint: order-independent *)"
        )
  | _ -> None

let d2 =
  expr_rule ~id:"D2" ~severity:Finding.Error
    ~doc:
      "Hashtbl.iter/fold result may escape in hash order (sort it, or annotate \
       (* xlint: order-independent *))"
    ~explain:d2_explain ~applies:everywhere d2_classify

(* ------------------------------------------------------------------ *)
(* D3: wall-clock and OS entropy inside lib/.                         *)
(*                                                                    *)
(* Handlers and library code must be functions of the virtual clock   *)
(* ([~now]) and the seeded RNG only.  Timing the process is fine in   *)
(* bin/ and bench/.                                                   *)

let wall_clock_paths =
  [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

let d3 =
  expr_rule ~id:"D3" ~severity:Finding.Error
    ~doc:"wall-clock read in lib/ (use the virtual ~now)"
    ~explain:
      "Library code (everything under lib/) must be a function of the virtual \
       clock (~now) and the seeded RNG: a wall-clock read makes output depend \
       on the machine and the moment, killing byte-identical replay. Timing \
       the process is legitimate in bin/ and bench/, which this rule does not \
       cover."
    ~applies:(has_prefix ~prefix:"lib/")
    (fun ~ancestors:_ e ->
      match ident_path e with
      | Some path when List.mem path wall_clock_paths ->
        Some
          ( None,
            Printf.sprintf
              "%s reads the wall clock; lib/ code must use the virtual ~now / seeded RNG"
              (String.concat "." path) )
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D4: polymorphic compare in the protocol layers (syntactic).        *)
(*                                                                    *)
(* Without types we flag the two syntactically certain shapes: a bare *)
(* [compare] value, and [=]/[<>] applied to a tuple, record, array or *)
(* list literal.  [x = None]/[Some _] option tests on atoms are       *)
(* deliberately not flagged.  The typed variant replaces both         *)
(* approximations: it sees the instantiation type, so [compare] at    *)
(* [int] passes and [=] on tuple-typed variables is caught.           *)

let is_structured e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_tuple _ | Parsetree.Pexp_record _ | Parsetree.Pexp_array _ ->
    true
  | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
  | _ -> false

let d4_dirs = [ "lib/core/"; "lib/distributed/" ]

let d4_explain =
  "Polymorphic compare orders values by memory layout: on tuples and records \
   the ordering is an accident of field order, and on abstract types (graphs, \
   tables, clouds) it is simply wrong. The protocol layers (lib/core/, \
   lib/distributed/) must use dedicated comparators — Int.compare, \
   Edge.compare, String.compare — so orderings are explicit and stable. With \
   a typed tree the rule flags compare/(=)/(<>)/(<) only at non-atomic \
   instantiation types (atoms: int, bool, char, unit, string, float, and \
   option/list/array/ref thereof) and exempts comparisons against constant \
   constructors (x = None, xs <> []); the syntactic fallback flags bare \
   [compare] and structural literals under (=)."

let d4_classify ~ancestors e =
  match ident_path e with
  | Some ([ "compare" ] | [ "Poly"; _ ]) ->
    Some
      ( None,
        "polymorphic compare orders values by memory layout; use a dedicated \
         comparator (Int.compare, Edge.compare, ...)" )
  | Some [ ("=" | "<>") as op ] ->
    (* Only when this ident is the function of the enclosing apply
       and an argument is a structured literal. *)
    let structured_arg =
      match ancestors with
      | outer :: _ -> (
        match outer.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (fn, args) when fn == e ->
          List.exists (fun (_, a) -> is_structured a) args
        | _ -> false)
      | [] -> false
    in
    if structured_arg then
      Some
        ( None,
          Printf.sprintf
            "polymorphic (%s) on a structured value; use a dedicated equality" op )
    else None
  | _ -> None

let d4_applies = in_dirs d4_dirs

let d4 =
  expr_rule ~id:"D4" ~severity:Finding.Error
    ~doc:
      "polymorphic compare in lib/core//lib/distributed (use Int.compare, \
       Edge.compare, or a dedicated comparator)"
    ~explain:d4_explain ~applies:d4_applies d4_classify

(* ------------------------------------------------------------------ *)
(* D5: ignoring a Result (syntactic).                                 *)
(*                                                                    *)
(* Typing is unavailable, so we flag the shapes that are certainly    *)
(* Results: literal Ok/Error constructions, the Result combinators,   *)
(* and this repo's known checkers (Graph.check_invariants,            *)
(* Registry.check, Tables.check, ... named check.../validate...).     *)
(* The typed variant flags any [ignore] whose argument's type is      *)
(* [result], whatever the callee is called.                           *)

let result_returning_names = [ "check"; "check_invariants"; "validate" ]
let result_combinators = [ "map"; "bind"; "join"; "map_error" ]

let is_result_expr e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ txt = Longident.Lident ("Ok" | "Error"); _ }, Some _)
    ->
    true
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some [ "Result"; f ] -> List.mem f result_combinators
    | Some path -> (
      match List.rev path with
      | last :: _ -> List.mem last result_returning_names
      | [] -> false)
    | None -> false)
  | _ -> false

let d5_explain =
  "An ignored Result silently swallows its Error case — usually a broken \
   invariant check (Graph.check_invariants, Registry.check, ...). Match on \
   the result instead, or handle the Error explicitly. With a typed tree any \
   [ignore e] where [e : (_, _) result] is flagged, regardless of the \
   callee's name; the syntactic fallback only recognises literal Ok/Error, \
   Result combinators, and callees named check*/validate*."

let d5_classify ~ancestors:_ e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
    match ident_path fn with
    | Some [ "ignore" ] when is_result_expr arg ->
      Some
        ( None,
          "this expression is a Result; ignoring it swallows the Error case — \
           match on it" )
    | _ -> None)
  | _ -> None

let d5 =
  expr_rule ~id:"D5" ~severity:Finding.Error
    ~doc:"ignore of a Result-typed expression (match on it instead)"
    ~explain:d5_explain ~applies:everywhere d5_classify
