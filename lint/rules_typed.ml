(* Typed upgrades of D2/D4/D5 (Tast walk over cmt-loaded or
   directly-typed trees, see [Typedload]).

   Each one drops an approximation documented in the PR-3 syntactic
   rule headers:

   - D4 sees the instantiation type: [compare] at [int] is no longer a
     false positive, and [=] on tuple-typed {e variables} (invisible to
     the literal-shape heuristic) is caught. Comparisons against
     constant constructors ([x = None], [xs <> []]) stay legal — they
     are tag checks.
   - D5 flags [ignore e] whenever [e : (_, _) result], whatever the
     callee is called — the check.../validate... name list is gone.
   - D2's sort exemption becomes flow-accurate: the enclosing sort must
     actually consume the fold's result (the fold must sit inside the
     sort's data argument), where the syntactic pass accepted any
     lexically enclosing sort. *)

open Rule

(* ------------------------------------------------------------------ *)
(* Type classification.                                               *)

(* Atomic types: polymorphic compare at these is deterministic and
   layout-independent. Containers of atoms inherit the property. *)
let rec safe_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
    match (Path.name p, args) with
    | ("int" | "bool" | "char" | "unit" | "string" | "float"), [] -> true
    | ("option" | "list" | "array" | "ref" | "Stdlib.ref"), [ a ] -> safe_ty a
    | _ -> false)
  | Types.Tpoly (t, _) -> safe_ty t
  | _ -> false

let rec ty_to_string ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.name p
  | Types.Tconstr (p, args, _) ->
    Printf.sprintf "(%s) %s" (String.concat ", " (List.map ty_to_string args)) (Path.name p)
  | Types.Ttuple ts -> String.concat " * " (List.map ty_to_string ts)
  | Types.Tvar _ -> "'a (still polymorphic here)"
  | Types.Tarrow _ -> "a function type"
  | Types.Tpoly (t, _) -> ty_to_string t
  | _ -> "an opaque type"

let arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> (
    match Types.get_desc t with Types.Tarrow (_, a, _, _) -> Some a | _ -> None)
  | _ -> None

let is_result_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match Path.name p with
    | "result" | "Stdlib.result" | "Stdlib.Result.t" | "Result.t" -> true
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Typed D4.                                                          *)

let d4_ops = [ "compare"; "="; "<>"; "<"; ">"; "<="; ">=" ]

let is_constant_construct e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_construct (_, _, []) -> true
  | _ -> false

let d4_typed ctx str =
  texpr_check
    (fun ~ancestors e ->
      match tident_path e with
      | Some [ op ] when List.mem op d4_ops -> (
        match arrow_arg e.Typedtree.exp_type with
        | None -> None
        | Some at ->
          if safe_ty at then None
          else
            (* Tag checks against a constant constructor ([x = None],
               [xs <> []], [state = Idle]) are deterministic. *)
            let tag_check =
              match ancestors with
              | outer :: _ -> (
                match outer.Typedtree.exp_desc with
                | Typedtree.Texp_apply (fn, args) when fn == e ->
                  List.exists
                    (fun (_, a) ->
                      match a with Some a -> is_constant_construct a | None -> false)
                    args
                | _ -> false)
              | [] -> false
            in
            if tag_check then None
            else
              Some
                ( "D4",
                  None,
                  Printf.sprintf
                    "polymorphic (%s) instantiated at %s; use a dedicated comparator \
                     (Int.compare, Edge.compare, ...)"
                    op (ty_to_string at) ))
      | _ -> None)
    ctx str

(* ------------------------------------------------------------------ *)
(* Typed D5.                                                          *)

let d5_typed ctx str =
  texpr_check
    (fun ~ancestors:_ e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply (fn, [ (Asttypes.Nolabel, Some arg) ]) -> (
        match tident_path fn with
        | Some [ "ignore" ] when is_result_ty arg.Typedtree.exp_type ->
          Some
            ( "D5",
              Some e.Typedtree.exp_loc,
              "this expression is a Result; ignoring it swallows the Error case — \
               match on it" )
        | _ -> None)
      | _ -> None)
    ctx str

(* ------------------------------------------------------------------ *)
(* Typed D2.                                                          *)

let rec tfun_body e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases = [ c ]; _ } -> tfun_body c.Typedtree.c_rhs
  | _ -> e

let t_is_commutative_reduction fn_arg =
  match (tfun_body fn_arg).Typedtree.exp_desc with
  | Typedtree.Texp_apply (op, _) -> (
    match tident_path op with
    | Some path -> (
      match List.rev path with
      | last :: _ -> List.mem last commutative_ops
      | [] -> false)
    | None -> false)
  | _ -> false

(* An enclosing sort exempts the fold only when the fold sits inside
   the sort's data argument — the value actually canonicalised. *)
let sort_consumes ~fold_loc ancestor =
  match ancestor.Typedtree.exp_desc with
  | Typedtree.Texp_apply (fn, args) -> (
    match tident_path fn with
    | Some path when List.mem path sort_paths -> (
      match List.rev (List.filter_map (fun (_, a) -> a) args) with
      | data :: _ -> loc_inside fold_loc data.Typedtree.exp_loc
      | [] -> false)
    | _ -> false)
  | _ -> false

let d2_typed ctx str =
  texpr_check
    (fun ~ancestors e ->
      match tident_path e with
      | Some [ "Hashtbl"; ("iter" | "fold") ] ->
        let loc = e.Typedtree.exp_loc in
        let sorted_above = List.exists (sort_consumes ~fold_loc:loc) ancestors in
        let commutative =
          match ancestors with
          | outer :: _ -> (
            match outer.Typedtree.exp_desc with
            | Typedtree.Texp_apply (fn, (_, Some first) :: _) when fn == e ->
              t_is_commutative_reduction first
            | _ -> false)
          | [] -> false
        in
        if sorted_above || commutative then None
        else
          let span =
            match ancestors with
            | outer :: _ when (match outer.Typedtree.exp_desc with
                              | Typedtree.Texp_apply (fn, _) -> fn == e
                              | _ -> false) ->
              Some outer.Typedtree.exp_loc
            | _ -> None
          in
          Some
            ( "D2",
              span,
              "Hashtbl iteration order is unspecified; canonicalise the escaping \
               result (List.sort) or annotate the site (* xlint: order-independent *)"
            )
      | _ -> None)
    ctx str

(* ------------------------------------------------------------------ *)
(* Assembled rules: typed run + syntactic fallback.                   *)

let d2 =
  { Rules_d.d2 with check = Typed { run = d2_typed; fallback = syntactic_of Rules_d.d2 } }

let d4 =
  { Rules_d.d4 with check = Typed { run = d4_typed; fallback = syntactic_of Rules_d.d4 } }

let d5 =
  { Rules_d.d5 with check = Typed { run = d5_typed; fallback = syntactic_of Rules_d.d5 } }
