(* Checked-in allowlist for intentional findings.

   One entry per line:

     # comment
     D2 lib/graph/graph.ml          — whole file, one rule
     D2 lib/graph/graph.ml:14       — one line
     *  lib/vendored/               — any rule, directory prefix

   Paths are repo-relative, exactly as xlint prints them. Every entry
   must still match at least one finding of a full run: stale entries
   (the finding they silenced is gone) are themselves reported as [A1]
   findings by the driver, so the allowlist can only shrink in step
   with the code. *)

type entry = {
  rule : string;
  path : string;
  line : int option;
  src_line : int; (* line of the entry in the allow file; 0 for synthetic entries *)
}

type t = entry list

let entry ?(src_line = 0) ?line rule path = { rule; path; line; src_line }

let parse_entry ?(src_line = 0) line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | [ rule; target ] -> (
    match String.rindex_opt target ':' with
    | Some i -> (
      let path = String.sub target 0 i in
      let ln = String.sub target (i + 1) (String.length target - i - 1) in
      match int_of_string_opt ln with
      | Some n -> Ok (Some { rule; path; line = Some n; src_line })
      | None -> Error "malformed line number")
    | None -> Ok (Some { rule; path = target; line = None; src_line }))
  | _ -> Error "expected: RULE PATH[:LINE]"

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] and errors = ref [] and line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           match parse_entry ~src_line:!line_no line with
           | Ok (Some e) -> entries := e :: !entries
           | Ok None -> ()
           | Error msg -> errors := Printf.sprintf "%s:%d: %s" path !line_no msg :: !errors
         done
       with End_of_file -> ());
      if !errors = [] then Ok (List.rev !entries) else Error (List.rev !errors))

let matches_path entry path =
  if entry.path = path then true
  else
    let n = String.length entry.path in
    n > 0 && entry.path.[n - 1] = '/'
    && String.length path >= n
    && String.sub path 0 n = entry.path

let entry_matches e ~rule ~path ~line =
  (e.rule = rule || e.rule = "*")
  && matches_path e path
  && match e.line with None -> true | Some l -> l = line

(* First matching entry, if any — the driver records it as used for
   stale-entry detection. *)
let matching (t : t) ~rule ~path ~line =
  List.find_opt (fun e -> entry_matches e ~rule ~path ~line) t

let allows (t : t) ~rule ~path ~line = matching t ~rule ~path ~line <> None

let pp_entry ppf e =
  Format.fprintf ppf "%s %s%s" e.rule e.path
    (match e.line with None -> "" | Some l -> ":" ^ string_of_int l)

let empty : t = []
