(* xlint — determinism-enforcing static analysis for the Xheal stack.

   Usage:
     xlint [--allow FILE] DIR...      lint every .ml under DIRs
     xlint --fixtures DIR             run the fixture self-test corpus

   Exit status is 0 iff no findings (respectively: all fixture
   expectations hold). *)

let () =
  let allow_file = ref None in
  let fixtures = ref None in
  let dirs = ref [] in
  let spec =
    [
      ( "--allow",
        Arg.String (fun f -> allow_file := Some f),
        "FILE checked-in allowlist (RULE PATH[:LINE] per line)" );
      ( "--fixtures",
        Arg.String (fun d -> fixtures := Some d),
        "DIR run the fixture self-test over DIR instead of linting" );
    ]
  in
  let usage = "xlint [--allow FILE] DIR... | xlint --fixtures DIR" in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  match !fixtures with
  | Some dir -> if Xheal_lint.Driver.self_test Format.std_formatter dir then exit 0 else exit 1
  | None ->
    if !dirs = [] then begin
      prerr_endline usage;
      exit 2
    end;
    let allow =
      match !allow_file with
      | None -> Xheal_lint.Allowlist.empty
      | Some f -> (
        match Xheal_lint.Allowlist.load f with
        | Ok a -> a
        | Error msgs ->
          List.iter prerr_endline msgs;
          exit 2)
    in
    let findings = Xheal_lint.Driver.run ~allow (List.rev !dirs) in
    Xheal_lint.Driver.report Format.std_formatter findings;
    if findings = [] then exit 0 else exit 1
