(* xlint — typed static analysis for the Xheal stack: determinism (D),
   clock discipline (C) and hot-path allocation (H) rule families.

   Usage:
     xlint [--allow FILE] [--sarif FILE] [--json] DIR...
                                      lint every .ml under DIRs
     xlint --fixtures DIR             run the fixture self-test corpus
     xlint --explain RULE             print a rule's full rationale
     xlint --rules                    list the catalogue

   Exit status is 0 iff no findings (respectively: all fixture
   expectations hold / the rule exists). *)

open Xheal_lint
open Xheal_obs

let json_of_finding (f : Finding.t) =
  Jsonw.Obj
    [
      ("rule", Jsonw.String f.Finding.rule);
      ( "severity",
        Jsonw.String (Finding.severity_to_string (Rules.severity_of f.Finding.rule)) );
      ("file", Jsonw.String f.Finding.file);
      ("line", Jsonw.Int f.Finding.line);
      ("col", Jsonw.Int f.Finding.col);
      ("endLine", Jsonw.Int f.Finding.end_line);
      ("message", Jsonw.String f.Finding.message);
    ]

let explain rule =
  match Rules.explain rule with
  | Some text ->
    let sev, doc, _ = Option.get (Rules.meta rule) in
    Printf.printf "%s (%s): %s\n\n%s\n" rule (Finding.severity_to_string sev) doc text;
    0
  | None ->
    Printf.eprintf "xlint: unknown rule %S; known: %s\n" rule
      (String.concat " " Rules.ids);
    2

let list_rules () =
  List.iter
    (fun id ->
      let sev, doc, _ = Option.get (Rules.meta id) in
      Printf.printf "%-3s %-7s %s\n" id (Finding.severity_to_string sev) doc)
    Rules.ids

let () =
  let allow_file = ref None in
  let sarif_file = ref None in
  let json = ref false in
  let fixtures = ref None in
  let explain_rule = ref None in
  let rules_only = ref false in
  let dirs = ref [] in
  let spec =
    [
      ( "--allow",
        Arg.String (fun f -> allow_file := Some f),
        "FILE checked-in allowlist (RULE PATH[:LINE] per line)" );
      ( "--sarif",
        Arg.String (fun f -> sarif_file := Some f),
        "FILE write the findings as SARIF 2.1.0 to FILE" );
      ("--json", Arg.Set json, " print findings as JSON on stdout");
      ( "--fixtures",
        Arg.String (fun d -> fixtures := Some d),
        "DIR run the fixture self-test over DIR instead of linting" );
      ( "--explain",
        Arg.String (fun r -> explain_rule := Some r),
        "RULE print RULE's full rationale and exit" );
      ("--rules", Arg.Set rules_only, " list the rule catalogue and exit");
    ]
  in
  let usage =
    "xlint [--allow FILE] [--sarif FILE] [--json] DIR... | xlint --fixtures DIR | \
     xlint --explain RULE"
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  match (!explain_rule, !rules_only, !fixtures) with
  | Some rule, _, _ -> exit (explain rule)
  | None, true, _ ->
    list_rules ();
    exit 0
  | None, false, Some dir ->
    if Driver.self_test Format.std_formatter dir then exit 0 else exit 1
  | None, false, None ->
    if !dirs = [] then begin
      prerr_endline usage;
      exit 2
    end;
    let allow, allow_path =
      match !allow_file with
      | None -> (Allowlist.empty, "xlint.allow")
      | Some f -> (
        match Allowlist.load f with
        | Ok a -> (a, f)
        | Error msgs ->
          List.iter prerr_endline msgs;
          exit 2)
    in
    let result = Driver.run ~allow ~allow_path (List.rev !dirs) in
    (match !sarif_file with
    | Some f ->
      let oc = open_out f in
      output_string oc (Sarif.to_string result.Driver.all_findings);
      close_out oc
    | None -> ());
    if !json then
      print_endline
        (Jsonw.to_string (Jsonw.List (List.map json_of_finding result.Driver.all_findings)))
    else Driver.report Format.std_formatter result;
    if result.Driver.all_findings = [] then exit 0 else exit 1
