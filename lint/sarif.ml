(* SARIF 2.1.0 export (the subset every SARIF consumer requires:
   tool.driver with a rule table, one result per finding with a
   physicalLocation region).

   Built on [Jsonw] so the output is byte-deterministic: same findings,
   same bytes — the shape validator ([Sarif_check]) and any diff-based
   CI consumer rely on that. Columns are 1-based per the SARIF spec;
   [Finding.col] is 0-based. *)

open Xheal_obs

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level sev = Jsonw.String (Finding.severity_to_string sev)

let rule_descriptor id =
  let sev, doc, explain =
    match Rules.meta id with
    | Some m -> m
    | None -> (Finding.Error, id, id)
  in
  Jsonw.Obj
    [
      ("id", Jsonw.String id);
      ("shortDescription", Jsonw.Obj [ ("text", Jsonw.String doc) ]);
      ("fullDescription", Jsonw.Obj [ ("text", Jsonw.String explain) ]);
      ("defaultConfiguration", Jsonw.Obj [ ("level", level sev) ]);
    ]

let result (f : Finding.t) =
  Jsonw.Obj
    [
      ("ruleId", Jsonw.String f.Finding.rule);
      ("level", level (Rules.severity_of f.Finding.rule));
      ("message", Jsonw.Obj [ ("text", Jsonw.String f.Finding.message) ]);
      ( "locations",
        Jsonw.List
          [
            Jsonw.Obj
              [
                ( "physicalLocation",
                  Jsonw.Obj
                    [
                      ( "artifactLocation",
                        Jsonw.Obj [ ("uri", Jsonw.String f.Finding.file) ] );
                      ( "region",
                        Jsonw.Obj
                          [
                            ("startLine", Jsonw.Int f.Finding.line);
                            ("startColumn", Jsonw.Int (f.Finding.col + 1));
                            ("endLine", Jsonw.Int f.Finding.end_line);
                          ] );
                    ] );
              ];
          ] );
    ]

let of_findings findings =
  Jsonw.Obj
    [
      ("version", Jsonw.String "2.1.0");
      ("$schema", Jsonw.String schema_uri);
      ( "runs",
        Jsonw.List
          [
            Jsonw.Obj
              [
                ( "tool",
                  Jsonw.Obj
                    [
                      ( "driver",
                        Jsonw.Obj
                          [
                            ("name", Jsonw.String "xlint");
                            ("version", Jsonw.String "2.0.0");
                            ( "informationUri",
                              Jsonw.String "file:DESIGN.md#4d-static-analysis" );
                            ("rules", Jsonw.List (List.map rule_descriptor Rules.ids));
                          ] );
                    ] );
                ("results", Jsonw.List (List.map result findings));
              ];
          ] );
    ]

let to_string findings = Jsonw.to_string_pretty (of_findings findings) ^ "\n"
