(* Typed-tree loading for the typed rule families.

   Two strategies, tried in order:

   1. {b cmt files}. When xlint runs from the build tree (the @lint
      alias executes in [_build/default], after [(alias_rec check)] has
      compiled everything), every source [dir/foo.ml] has a sibling
      [dir/.<lib>.objs/byte/<Lib>__Foo.cmt] (or [.eobjs] for
      executables) whose [cmt_sourcefile] is the repo-relative source
      path. We index each directory's cmt side-car once and match by
      source path, so the walk sees exactly the tree the compiler
      typed — module aliases, wrapped names and all.

   2. {b direct typing}. Files with no cmt (the fixture corpus, or a
      tree linted outside the build dir) are typed from scratch against
      the stdlib-only initial environment. Self-contained fixtures type
      fine; real library files referencing workspace modules fail fast
      and fall back to the syntactic rule variants, which document
      their approximations.

   Every failure path degrades to [None]; typed rules then run their
   syntactic fallback (if any), so a missing or stale cmt can weaken a
   rule back to PR-3 precision but never crash the lint. *)

(* ------------------------------------------------------------------ *)
(* Strategy 1: cmt side-cars.                                         *)

let is_objs_dir name =
  String.length name > 1 && name.[0] = '.'
  && (Filename.check_suffix name ".objs" || Filename.check_suffix name ".eobjs")

(* Directory -> (source basename -> typed structure). Populated lazily,
   one read per cmt per process. *)
let dir_cache : (string, (string, Typedtree.structure) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 16

let read_cmt_structure path =
  match Cmt_format.read_cmt path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation str; cmt_sourcefile; _ } ->
    Option.map (fun src -> (Filename.basename src, str)) cmt_sourcefile
  | _ -> None
  | exception _ -> None

let index_dir dir =
  match Hashtbl.find_opt dir_cache dir with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    (try
       Sys.readdir dir |> Array.to_list |> List.sort String.compare
       |> List.iter (fun name ->
              if is_objs_dir name then begin
                let byte = Filename.concat (Filename.concat dir name) "byte" in
                if Sys.file_exists byte && Sys.is_directory byte then
                  Sys.readdir byte |> Array.to_list |> List.sort String.compare
                  |> List.iter (fun f ->
                         if Filename.check_suffix f ".cmt" then
                           match read_cmt_structure (Filename.concat byte f) with
                           | Some (base, str) ->
                             if not (Hashtbl.mem tbl base) then Hashtbl.add tbl base str
                           | None -> ())
              end)
     with Sys_error _ -> ());
    Hashtbl.add dir_cache dir tbl;
    tbl

let from_cmt path =
  let tbl = index_dir (Filename.dirname path) in
  Hashtbl.find_opt tbl (Filename.basename path)

(* ------------------------------------------------------------------ *)
(* Strategy 2: direct typing against the initial environment.         *)

let initial_env =
  lazy
    (Clflags.dont_write_files := true;
     (* The fixture corpus deliberately contains smelly code; compiler
        warnings (and the 5.x auto-include alert init_path triggers)
        are not xlint's output. *)
     ignore (Warnings.parse_options false "-a");
     (try Warnings.parse_alert_option "-all" with _ -> ());
     Compmisc.init_path ();
     Compmisc.initial_env ())

let type_source parsed =
  match Typemod.type_structure (Lazy.force initial_env) parsed with
  | tstr, _, _, _, _ -> Some tstr
  | exception _ -> None

(* ------------------------------------------------------------------ *)

let for_file ~path parsed =
  match from_cmt path with
  | Some str -> Some str
  | None -> type_source parsed
