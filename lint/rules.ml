(* xlint rule catalogue.

   Every correctness claim in this repo — the QCheck conformance of the
   event engine against [Netsim.run_reference], seeded-replay
   determinism, the experiment tables — assumes runs are bit-reproducible
   under a seed.  These rules mechanise that discipline:

     D1  no stateful global randomness (use an explicit [Random.State.t])
     D2  no [Hashtbl.iter]/[Hashtbl.fold] whose result escapes in hash
         order (canonicalise with a sort, or annotate the site)
     D3  no wall-clock / OS entropy inside [lib/] (handlers get [~now])
     D4  no polymorphic compare in [lib/core/] and [lib/distributed/]
     D5  no [ignore] of an obviously [Result]-typed expression

   Rules are purely syntactic (Parsetree-level, no typing), so each one
   documents the approximation it makes. *)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type ctx = { path : string (* repo-relative path, e.g. "lib/graph/graph.ml" *) }

type rule = {
  id : string;
  doc : string;
  applies : string -> bool;
  check : ctx -> Parsetree.structure -> finding list;
}

let finding ~ctx ~id loc message =
  let p = loc.Location.loc_start in
  {
    rule = id;
    file = ctx.path;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* ------------------------------------------------------------------ *)
(* Parsetree helpers.                                                 *)

(* Longident of an identifier expression, as a string list with any
   leading [Stdlib.] stripped ([Stdlib.compare] and [compare] are the
   same hazard). *)
let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
    match Longident.flatten txt with
    | "Stdlib" :: (_ :: _ as rest) -> Some rest
    | path -> Some path
    | exception _ -> None)
  | _ -> None

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Walk every expression of a structure; [f] also receives the stack of
   enclosing expressions, innermost first. *)
let iter_exprs structure f =
  let stack = ref [] in
  let expr self e =
    f ~ancestors:!stack e;
    stack := e :: !stack;
    Ast_iterator.default_iterator.expr self e;
    stack := List.tl !stack
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure

(* Collect findings from a per-expression classifier. *)
let expr_rule ~id ~doc ~applies classify =
  let check ctx str =
    let acc = ref [] in
    iter_exprs str (fun ~ancestors e ->
        match classify ~ancestors e with
        | Some msg -> acc := finding ~ctx ~id e.Parsetree.pexp_loc msg :: !acc
        | None -> ());
    List.rev !acc
  in
  { id; doc; applies; check }

let everywhere _ = true

(* ------------------------------------------------------------------ *)
(* D1: stateful global randomness.                                    *)
(*                                                                    *)
(* Any [Random.f] draws from (or reseeds) the process-global PRNG,    *)
(* which makes the draw order depend on unrelated code paths.  Only   *)
(* the [Random.State] API, threaded explicitly, is replayable.        *)

let d1 =
  expr_rule ~id:"D1"
    ~doc:"global Random state (use an explicit Random.State.t)"
    ~applies:everywhere
    (fun ~ancestors:_ e ->
      match ident_path e with
      | Some ("Random" :: rest) when rest <> [] -> (
        match rest with
        | "State" :: _ -> None
        | f :: _ ->
          Some
            (Printf.sprintf
               "Random.%s uses the global PRNG; thread an explicit Random.State.t instead"
               f)
        | [] -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D2: hash-order escape.                                             *)

let sort_paths =
  [
    [ "List"; "sort" ];
    [ "List"; "sort_uniq" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

(* Operators whose repeated application is order-insensitive, so a fold
   reducing with one of them is safe even in hash order. *)
let commutative_ops =
  [ "+"; "+."; "*"; "*."; "land"; "lor"; "lxor"; "max"; "min"; "&&"; "||" ]

let rec fun_body e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> fun_body body
  | _ -> e

let is_commutative_reduction fn_arg =
  match (fun_body fn_arg).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (op, _) -> (
    match ident_path op with
    | Some path -> (
      match List.rev path with
      | last :: _ -> List.mem last commutative_ops
      | [] -> false)
    | None -> false)
  | _ -> false

let is_sort_apply e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some path -> List.mem path sort_paths
    | None -> false)
  | _ -> false

let d2 =
  expr_rule ~id:"D2"
    ~doc:
      "Hashtbl.iter/fold result may escape in hash order (sort it, or annotate \
       (* xlint: order-independent *))"
    ~applies:everywhere
    (fun ~ancestors e ->
      match ident_path e with
      | Some [ "Hashtbl"; ("iter" | "fold") ] ->
        (* Exempt when an enclosing expression canonicalises the result
           with a sort, or when the fold body is a commutative
           reduction ([max], [+], ...).  Both checks are syntactic and
           local: a sort applied later via a binding does not count and
           needs the pragma instead. *)
        let sorted_above = List.exists is_sort_apply ancestors in
        let commutative =
          match ancestors with
          | outer :: _ -> (
            match outer.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply (fn, (_, first) :: _) when fn == e ->
              is_commutative_reduction first
            | _ -> false)
          | [] -> false
        in
        if sorted_above || commutative then None
        else
          Some
            "Hashtbl iteration order is unspecified; canonicalise the escaping \
             result (List.sort) or annotate the site (* xlint: order-independent *)"
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D3: wall-clock and OS entropy inside lib/.                         *)
(*                                                                    *)
(* Handlers and library code must be functions of the virtual clock   *)
(* ([~now]) and the seeded RNG only.  Timing the process is fine in   *)
(* bin/ and bench/.                                                   *)

let wall_clock_paths =
  [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

let d3 =
  expr_rule ~id:"D3"
    ~doc:"wall-clock read in lib/ (use the virtual ~now)"
    ~applies:(has_prefix ~prefix:"lib/")
    (fun ~ancestors:_ e ->
      match ident_path e with
      | Some path when List.mem path wall_clock_paths ->
        Some
          (Printf.sprintf
             "%s reads the wall clock; lib/ code must use the virtual ~now / seeded RNG"
             (String.concat "." path))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D4: polymorphic compare in the protocol layers.                    *)
(*                                                                    *)
(* Structural compare on tuples/records picks an ordering that is an  *)
(* accident of field layout, and on abstract types (graphs, tables)   *)
(* it is simply wrong.  Without types we flag the two syntactically   *)
(* certain shapes: a bare [compare] value, and [=]/[<>] applied to a  *)
(* tuple, record, array or list literal.  [x = None]/[Some _] option  *)
(* tests on atoms are deliberately not flagged.                       *)

let is_structured e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_tuple _ | Parsetree.Pexp_record _ | Parsetree.Pexp_array _ ->
    true
  | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
  | _ -> false

let d4_dirs = [ "lib/core/"; "lib/distributed/" ]

let d4 =
  expr_rule ~id:"D4"
    ~doc:
      "polymorphic compare in lib/core//lib/distributed (use Int.compare, \
       Edge.compare, or a dedicated comparator)"
    ~applies:(fun p -> List.exists (fun d -> has_prefix ~prefix:d p) d4_dirs)
    (fun ~ancestors e ->
      match ident_path e with
      | Some ([ "compare" ] | [ "Poly"; _ ]) ->
        Some
          "polymorphic compare orders values by memory layout; use a dedicated \
           comparator (Int.compare, Edge.compare, ...)"
      | Some [ ("=" | "<>") as op ] ->
        (* Only when this ident is the function of the enclosing apply
           and an argument is a structured literal. *)
        let structured_arg =
          match ancestors with
          | outer :: _ -> (
            match outer.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply (fn, args) when fn == e ->
              List.exists (fun (_, a) -> is_structured a) args
            | _ -> false)
          | [] -> false
        in
        if structured_arg then
          Some
            (Printf.sprintf
               "polymorphic (%s) on a structured value; use a dedicated equality" op)
        else None
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* D5: ignoring a Result.                                             *)
(*                                                                    *)
(* Typing is unavailable, so we flag the shapes that are certainly    *)
(* Results: literal Ok/Error constructions, the Result combinators,   *)
(* and this repo's known checkers (Graph.check_invariants,            *)
(* Registry.check, Tables.check, ... named check.../validate...).    *)

let result_returning_names = [ "check"; "check_invariants"; "validate" ]
let result_combinators = [ "map"; "bind"; "join"; "map_error" ]

let is_result_expr e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ txt = Longident.Lident ("Ok" | "Error"); _ }, Some _)
    ->
    true
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some [ "Result"; f ] -> List.mem f result_combinators
    | Some path -> (
      match List.rev path with
      | last :: _ -> List.mem last result_returning_names
      | [] -> false)
    | None -> false)
  | _ -> false

let d5 =
  expr_rule ~id:"D5"
    ~doc:"ignore of a Result-typed expression (match on it instead)"
    ~applies:everywhere
    (fun ~ancestors:_ e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
        match ident_path fn with
        | Some [ "ignore" ] when is_result_expr arg ->
          Some
            "this expression is a Result; ignoring it swallows the Error case — \
             match on it"
        | _ -> None)
      | _ -> None)

let all = [ d1; d2; d3; d4; d5 ]
