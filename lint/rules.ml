(* The assembled rule catalogue.

   Families:
   - D (determinism, PR-3 lineage): D1/D3 syntactic, D2/D4/D5 typed
     with documented syntactic fallbacks ([Rules_d], [Rules_typed]).
   - C (clock discipline): the two-clock convention ([Rules_c]).
   - H (hot-path allocation): opt-in via [(* xlint: hot *)]
     ([Rules_h]).

   Two pseudo-rules are synthesised by the driver rather than run as
   checks: E0 (a file failed to parse) and A1 (a stale xlint.allow
   entry). They appear here so [--explain], severities and the SARIF
   rule table cover every id a run can emit. *)

let all : Rule.t list =
  [
    Rules_d.d1;
    Rules_typed.d2;
    Rules_d.d3;
    Rules_typed.d4;
    Rules_typed.d5;
    Rules_c.c1;
    Rules_c.c2;
    Rules_h.h1;
    Rules_h.h2;
    Rules_h.h3;
    Rules_h.h4;
  ]

(* id, severity, doc, explain — for findings the driver synthesises. *)
let pseudo : (string * Finding.severity * string * string) list =
  [
    ( "E0",
      Finding.Error,
      "source file failed to parse",
      "xlint could not parse this file, so no rule ran on it. The finding's \
       message carries the parser's own error. Fix the syntax error; xlint \
       never silently skips unparseable files." );
    ( "A1",
      Finding.Error,
      "stale xlint.allow entry",
      "Every xlint.allow entry must still match at least one raw finding of \
       a full run. This entry matched none — the finding it silenced is \
       gone — so it must be deleted. Stale entries otherwise accumulate and \
       can mask a future regression at the same location. The finding \
       points at the allow file line to remove." );
  ]

let find id = List.find_opt (fun (r : Rule.t) -> r.Rule.id = id) all

let meta id =
  match find id with
  | Some r -> Some (r.Rule.severity, r.Rule.doc, r.Rule.explain)
  | None ->
    List.find_map
      (fun (pid, sev, doc, explain) ->
        if pid = id then Some (sev, doc, explain) else None)
      pseudo

let severity_of id =
  match meta id with Some (sev, _, _) -> sev | None -> Finding.Error

let explain id = Option.map (fun (_, _, e) -> e) (meta id)

(* Every id a run can emit, catalogue order then pseudo. *)
let ids =
  List.map (fun (r : Rule.t) -> r.Rule.id) all
  @ List.map (fun (i, _, _, _) -> i) pseudo
