(* C-rules: the two-clock discipline, statically.

   The repo runs on two virtual clocks that must never mix (DESIGN
   §4e/§4g): the {e engine-rounds} clock (cost-model round charges —
   [Cost.add_phase], the Theorem-5 closed forms) and the {e net-virtual}
   clock (Netsim virtual time, the [~now] every protocol handler
   receives). [Tracer.claim_clock] enforces the convention at runtime;
   these rules promote it to a compile-time guarantee for [lib/core],
   [lib/distributed] and [lib/obs].

   The one sanctioned bridge is measured pricing: a protocol run's
   [Netsim.stats] folded into the engine's report through
   [Cost.add_measured_phase] / [Cost.measured] (see [Pricing]). Those
   calls are deliberately not in C2's engine-API list. *)

open Rule

let c_dirs = [ "lib/core/"; "lib/distributed/"; "lib/obs/" ]
let c_applies = in_dirs c_dirs

let known_clocks = [ "engine-rounds"; "net-virtual" ]

(* A [Tracer.claim_clock] application, with its clock argument when it
   is a string literal. *)
let claim_of e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, args) -> (
    match ident_path fn with
    | Some path when (match List.rev path with "claim_clock" :: _ -> true | _ -> false) ->
      let clock =
        List.find_map
          (fun (_, a) ->
            match a.Parsetree.pexp_desc with
            | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
            | _ -> None)
          args
      in
      Some (e.Parsetree.pexp_loc, clock)
    | _ -> None)
  | _ -> None

(* Engine-clock operations: the closed-form charges and the raw
   per-phase charge. [add_measured_phase] is the sanctioned bridge and
   is absent on purpose. *)
let engine_ops =
  [ "add_phase"; "elect"; "distribute"; "splice"; "find_free"; "leader_replace"; "combine" ]

let is_cost_engine_apply e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some path -> (
      match List.rev path with
      | op :: "Cost" :: _ -> List.mem op engine_ops
      | _ -> false)
    | None -> false)
  | _ -> false

(* Does [e] mention the bare identifier [now]? (The handler convention:
   a [~now]-labelled parameter is net-virtual time.) *)
let mentions_now e =
  let found = ref false in
  let expr self x =
    (match ident_path x with Some [ "now" ] -> found := true | _ -> ());
    Ast_iterator.default_iterator.expr self x
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* Does [e] contain a [_.Cost.<field>] projection (an engine-clock
   value, e.g. [report.Cost.rounds])? *)
let mentions_cost_field e =
  let found = ref false in
  let expr self x =
    (match x.Parsetree.pexp_desc with
    | Parsetree.Pexp_field (_, { txt; _ }) -> (
      match Longident.flatten txt with
      | l when List.mem "Cost" l -> found := true
      | _ -> ()
      | exception _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self x
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let binds_now e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun ((Asttypes.Labelled "now" | Asttypes.Optional "now"), _, _, _) ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* C1: clock claims must be literal, known, and unique per binding.   *)

let c1_explain =
  "Tracer.claim_clock declares which time base a tracer's ~now values are on; \
   the repo has exactly two: \"engine-rounds\" (cost-model round charges) and \
   \"net-virtual\" (Netsim virtual time). A claim must be a string literal \
   (so the discipline is statically checkable), must name one of the two \
   known clocks, and one binding must not claim both — a timeline recorded \
   on two clocks is unreadable, which Tracer.check only discovers at runtime."

(* Per top-level value binding: collect claims, flag unknown/non-literal
   clocks and mixed claims. *)
let c1_check ctx str =
  let acc = ref [] in
  let flag ~span loc msg = acc := finding ~ctx ~id:"C1" ?span loc msg :: !acc in
  let check_binding vb =
    let claims = ref [] in
    let expr self e =
      (match claim_of e with
      | Some (loc, Some clock) ->
        if not (List.mem clock known_clocks) then
          flag ~span:None loc
            (Printf.sprintf
               "unknown clock %S; the two-clock convention knows \"engine-rounds\" and \
                \"net-virtual\""
               clock)
        else begin
          (match !claims with
          | (other, _) :: _ when other <> clock ->
            flag ~span:None loc
              (Printf.sprintf
                 "this binding claims both %S and %S; split it so each function \
                  touches one clock"
                 other clock)
          | _ -> ());
          claims := (clock, loc) :: !claims
        end
      | Some (loc, None) ->
        flag ~span:None loc
          "claim_clock with a non-literal clock name; use a string literal so the \
           clock discipline stays statically checkable"
      | None -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.value_binding it vb
  in
  let item it_self item =
    (match item.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) -> List.iter check_binding vbs
    | _ -> Ast_iterator.default_iterator.structure_item it_self item);
    ()
  in
  let it = { Ast_iterator.default_iterator with structure_item = item } in
  it.structure it str;
  List.rev !acc

let c1 =
  {
    id = "C1";
    severity = Finding.Error;
    doc = "clock claims must be literal, known, and one per binding";
    explain = c1_explain;
    applies = c_applies;
    check = Syntactic c1_check;
  }

(* ------------------------------------------------------------------ *)
(* C2: no cross-clock value flow.                                     *)

let c2_explain =
  "A function that binds a ~now parameter lives on the net-virtual clock (the \
   Netsim handler convention), so inside it (a) claiming the \
   \"engine-rounds\" clock, (b) feeding [now] into an engine-clock Cost \
   operation (add_phase, elect, distribute, splice, find_free, \
   leader_replace, combine), and (c) passing an engine value \
   (a [_.Cost.<field>] projection) as a Tracer ~now are all cross-clock \
   flows. Convert between clocks only through the sanctioned measured-pricing \
   bridge: Netsim.stats folded in via Cost.add_measured_phase (see Pricing), \
   which this rule deliberately exempts."

let tracer_time_calls = [ "begin_span"; "end_span"; "instant"; "sample" ]

let is_tracer_time_apply e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some path -> (
      match List.rev path with
      | op :: _ -> List.mem op tracer_time_calls
      | [] -> false)
    | None -> false)
  | _ -> false

let c2_classify ~ancestors e =
  let now_scoped = List.exists binds_now ancestors || binds_now e in
  if not now_scoped then None
  else
    match claim_of e with
    | Some (_, Some "engine-rounds") ->
      Some
        ( None,
          "a ~now-clocked (net-virtual) function claims the engine-rounds clock; \
           split the engine-side recording out of the handler" )
    | _ ->
      if is_cost_engine_apply e then begin
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (_, args)
          when List.exists (fun (_, a) -> mentions_now a) args ->
          Some
            ( None,
              "virtual-time [now] flows into an engine-rounds Cost operation; convert \
               via the measured-pricing bridge (Cost.add_measured_phase) instead" )
        | _ -> None
      end
      else if is_tracer_time_apply e then begin
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (_, args)
          when List.exists
                 (fun (l, a) ->
                   l = Asttypes.Labelled "now" && mentions_cost_field a)
                 args ->
          Some
            ( None,
              "an engine-clock value (a Cost field) is passed as a net-virtual ~now; \
               record engine spans outside ~now-clocked handlers" )
        | _ -> None
      end
      else None

let c2 =
  expr_rule ~id:"C2" ~severity:Finding.Error
    ~doc:"cross-clock value flow between engine-rounds and net-virtual time"
    ~explain:c2_explain ~applies:c_applies c2_classify
